"""Journal durability, torn-line tolerance, and replay semantics."""

import json

import pytest

from repro.campaign import (
    JOURNAL_SCHEMA,
    CampaignError,
    Journal,
    JournalState,
    read_events,
)

HEADER = {
    "type": "campaign",
    "schema": JOURNAL_SCHEMA,
    "spec": {"circuits": ["s27"]},
    "spec_hash": "abc",
}


def write_journal(path, events):
    with Journal(str(path)) as journal:
        for event in events:
            journal.append(event)
    return str(path)


class TestJournalWriter:
    def test_appends_one_json_line_per_event(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", [HEADER, {"type": "items"}])
        lines = open(path).read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["type"] == "campaign"

    def test_events_get_timestamps(self, tmp_path):
        clock_value = [100.0]
        journal = Journal(str(tmp_path / "j.jsonl"),
                          clock=lambda: clock_value[0])
        journal.append({"type": "campaign"})
        journal.close()
        assert read_events(journal.path)[0]["ts"] == 100.0

    def test_repairs_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [HEADER])
        with open(path, "a") as handle:
            handle.write('{"type": "item_sta')  # killed mid-write
        with Journal(str(path)) as journal:
            journal.append({"type": "merged", "summary": {}})
        events = read_events(str(path))
        assert [e["type"] for e in events] == ["campaign", "merged"]


class TestReadEvents:
    def test_tolerates_torn_final_line(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", [HEADER])
        with open(path, "a") as handle:
            handle.write('{"type": "item_done", "item"')
        assert [e["type"] for e in read_events(path)] == ["campaign"]

    def test_rejects_corruption_mid_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as handle:
            handle.write("not json\n")
            handle.write(json.dumps(HEADER) + "\n")
        with pytest.raises(CampaignError, match="corrupt"):
            read_events(str(path))


class TestReplay:
    def test_requires_campaign_header(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", [{"type": "items"}])
        with pytest.raises(CampaignError, match="header"):
            JournalState.replay(path)

    def test_rejects_unknown_schema(self, tmp_path):
        bad = dict(HEADER, schema="other/v2")
        path = write_journal(tmp_path / "j.jsonl", [bad])
        with pytest.raises(CampaignError, match="schema"):
            JournalState.replay(path)

    def test_done_items_first_event_wins(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", [
            HEADER,
            {"type": "item_done", "item": "s27/000", "payload": {"v": 1}},
            {"type": "item_done", "item": "s27/000", "payload": {"v": 2}},
        ])
        state = JournalState.replay(path)
        assert state.done["s27/000"] == {"v": 1}

    def test_started_without_terminal_event_stays_in_flight(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", [
            HEADER,
            {"type": "item_started", "item": "s27/000", "attempt": 1},
            {"type": "item_started", "item": "s27/001", "attempt": 1},
            {"type": "item_done", "item": "s27/001", "payload": {}},
        ])
        state = JournalState.replay(path)
        assert set(state.started) == {"s27/000"}

    def test_failed_then_done_is_not_failed(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", [
            HEADER,
            {"type": "item_failed", "item": "s27/000", "attempt": 1,
             "error": "timeout"},
            {"type": "item_done", "item": "s27/000", "payload": {}},
        ])
        state = JournalState.replay(path)
        assert state.failed == {}
        assert state.attempts["s27/000"] == 1

    def test_catalogue_and_merge_events(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", [
            HEADER,
            {"type": "items",
             "catalogue": [{"item": "s27/000", "faults": 8,
                            "fault_hash": "deadbeef"}]},
            {"type": "merged", "summary": {"vectors": 3}},
        ])
        state = JournalState.replay(path)
        assert state.item_hashes == {"s27/000": "deadbeef"}
        assert state.merged == {"vectors": 3}
