"""CampaignSpec serialization, hashing, and validation."""

import pytest

from repro.campaign import CampaignError, CampaignSpec, derive_seed


def spec(**overrides):
    base = dict(circuits=("s27",), name="t", seed=7)
    base.update(overrides)
    return CampaignSpec(**base)


class TestValidation:
    def test_needs_circuits(self):
        with pytest.raises(CampaignError):
            CampaignSpec(circuits=())

    def test_shard_size_positive(self):
        with pytest.raises(CampaignError):
            spec(shard_size=0)

    def test_passes_positive(self):
        with pytest.raises(CampaignError):
            spec(passes=0)

    def test_max_attempts_positive(self):
        with pytest.raises(CampaignError):
            spec(max_attempts=0)

    def test_justify_depth_positive(self):
        with pytest.raises(CampaignError):
            spec(justify_depth=0)

    def test_list_circuits_become_tuple(self):
        assert spec(circuits=["s27", "s298"]).circuits == ("s27", "s298")


class TestSerialization:
    def test_roundtrip(self):
        original = spec(fault_limit=10, item_timeout_s=1.5)
        assert CampaignSpec.from_dict(original.to_dict()) == original

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "spec.json")
        original = spec()
        original.save(path)
        assert CampaignSpec.load(path) == original

    def test_rejects_unknown_keys(self):
        data = spec().to_dict()
        data["bogus"] = 1
        with pytest.raises(CampaignError, match="bogus"):
            CampaignSpec.from_dict(data)

    def test_rejects_wrong_schema(self):
        data = spec().to_dict()
        data["schema"] = "other/v9"
        with pytest.raises(CampaignError, match="schema"):
            CampaignSpec.from_dict(data)

    def test_rejects_non_dict(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict([1, 2])


class TestHash:
    def test_stable_across_json_roundtrip(self):
        original = spec()
        parsed = CampaignSpec.from_dict(original.to_dict())
        assert parsed.spec_hash() == original.spec_hash()

    def test_changes_with_result_affecting_fields(self):
        assert spec(seed=1).spec_hash() != spec(seed=2).spec_hash()
        assert spec(shard_size=8).spec_hash() != spec(shard_size=9).spec_hash()

    def test_default_justify_depth_not_serialized(self):
        # specs predating the field keep their hash and journal identity
        data = spec().to_dict()
        assert "justify_depth" not in data
        deep = spec(justify_depth=3)
        assert deep.to_dict()["justify_depth"] == 3
        assert deep.spec_hash() != spec().spec_hash()
        assert CampaignSpec.from_dict(
            deep.to_dict()
        ).spec_hash() == deep.spec_hash()


class TestSchedule:
    def test_gahitec_schedule_length(self, s27_circuit):
        assert len(spec(passes=2).schedule_for(s27_circuit)) == 2

    def test_baseline_schedule(self, s27_circuit):
        schedule = spec(baseline=True).schedule_for(s27_circuit)
        assert all(p.justification == "deterministic" for p in schedule)

    def test_justify_depth_reaches_every_pass(self, s27_circuit):
        for overrides in ({}, {"baseline": True}):
            schedule = spec(justify_depth=3, **overrides).schedule_for(
                s27_circuit
            )
            assert all(p.justify_depth == 3 for p in schedule)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "a/000") == derive_seed(3, "a/000")

    def test_varies_with_token_and_base(self):
        assert derive_seed(3, "a/000") != derive_seed(3, "a/001")
        assert derive_seed(3, "a/000") != derive_seed(4, "a/000")

    def test_non_negative_31_bit(self):
        for base in (0, 1, 2**40, -5):
            value = derive_seed(base, "x")
            assert 0 <= value < 2**31
