"""Campaign knowledge flow: sidecar persistence, resume, and preload."""

import json
import os

from repro.campaign import CampaignRunner, CampaignSpec, read_events
from repro.knowledge import load_knowledge

SPEC = dict(
    circuits=("s27", "s298"),
    name="knowledge-drill",
    seed=11,
    shard_size=6,
    passes=1,
    fault_limit=12,
)


def run_campaign(tmp_path, name, **overrides):
    journal = str(tmp_path / f"{name}.jsonl")
    spec = CampaignSpec(**{**SPEC, **overrides})
    result = CampaignRunner(spec, journal).run()
    return result, journal


class TestKnowledgeSidecar:
    def test_run_writes_sidecar_and_journal_event(self, tmp_path):
        result, journal = run_campaign(tmp_path, "with")
        sidecar = os.path.splitext(journal)[0] + ".knowledge.json"
        assert os.path.exists(sidecar)
        stores = load_knowledge(sidecar)
        assert stores, "campaign learned nothing on two circuits"
        for name, store in stores.items():
            assert store.circuit == name
            assert len(store) or store.seed_pool
        events = [e for e in read_events(journal) if e["type"] == "knowledge"]
        assert len(events) == 1
        assert events[0]["path"] == sidecar
        assert events[0]["entries"] == {
            name: len(store) for name, store in stores.items()
        }

    def test_disabled_knowledge_writes_no_sidecar(self, tmp_path):
        result, journal = run_campaign(tmp_path, "off", knowledge=False)
        sidecar = os.path.splitext(journal)[0] + ".knowledge.json"
        assert not os.path.exists(sidecar)
        assert result.knowledge == {}
        assert "knowledge" not in [e["type"] for e in read_events(journal)]

    def test_resumed_campaign_reproduces_sidecar_exactly(self, tmp_path):
        reference, ref_journal = run_campaign(tmp_path, "ref")
        ref_stores = load_knowledge(
            os.path.splitext(ref_journal)[0] + ".knowledge.json"
        )
        # replay a truncated journal: planning events plus a few results,
        # exactly what survives a mid-campaign kill
        full_events = read_events(ref_journal)
        partial = str(tmp_path / "partial.jsonl")
        with open(partial, "w") as handle:
            for event in full_events:
                if event["type"] in ("campaign", "items"):
                    handle.write(json.dumps(event) + "\n")
            done = [e for e in full_events if e["type"] == "item_done"]
            for event in done[: len(done) // 2]:
                handle.write(json.dumps(event) + "\n")
        resumed = CampaignRunner.resume(partial)
        assert resumed.fault_coverage == reference.fault_coverage
        resumed_stores = load_knowledge(
            os.path.splitext(partial)[0] + ".knowledge.json"
        )
        assert sorted(resumed_stores) == sorted(ref_stores)
        for name in ref_stores:
            assert (
                resumed_stores[name].to_dict() == ref_stores[name].to_dict()
            ), name

    def test_preloaded_sidecar_keeps_coverage_and_registers_hits(
        self, tmp_path
    ):
        cold, cold_journal = run_campaign(tmp_path, "cold")
        sidecar = os.path.splitext(cold_journal)[0] + ".knowledge.json"
        warm, _ = run_campaign(
            tmp_path, "warm", knowledge_file=sidecar
        )
        assert warm.items_failed == 0
        assert warm.fault_coverage >= cold.fault_coverage
        # the preloaded facts must register: lookup hits when the store
        # had proof entries, GA seeding when it only carried sequences
        used = (
            warm.knowledge_stats.get("justified_hits", 0)
            + warm.knowledge_stats.get("unjustifiable_hits", 0)
            + warm.knowledge_stats.get("ga_seeded", 0)
        )
        assert used > 0, warm.knowledge_stats

    def test_missing_preload_file_degrades_gracefully(self, tmp_path):
        result, _ = run_campaign(
            tmp_path, "orphan",
            knowledge_file=str(tmp_path / "nonexistent.json"),
        )
        assert result.items_failed == 0
        assert result.fault_coverage > 0
