"""Merge stage: cross-shard grading, redundancy dropping, report rollup."""

from repro.campaign import (
    CampaignSpec,
    build_items,
    merge_campaign,
    run_item,
    shard_faults,
)


def spec(**overrides):
    base = dict(circuits=("s27",), name="m", seed=3, shard_size=8, passes=2)
    base.update(overrides)
    return CampaignSpec(**base)


def payloads_for(s):
    return {
        item.item_id: run_item(s, item).to_dict() for item in build_items(s)
    }


class TestMergeCampaign:
    def test_coverage_at_least_union_of_shards(self):
        s = spec()
        payloads = payloads_for(s)
        result = merge_campaign(s, payloads)
        merged = result.circuits["s27"]
        shard_detected = set()
        for payload in payloads.values():
            shard_detected.update(payload["detected"])
        assert shard_detected <= set(merged.detected)
        assert merged.total_faults == len(shard_faults(s, "s27"))

    def test_drops_redundant_sequences(self):
        s = spec()
        result = merge_campaign(s, payloads_for(s))
        merged = result.circuits["s27"]
        assert merged.dropped_sequences > 0
        assert len(merged.blocks) == len(set(merged.blocks))

    def test_result_independent_of_payload_dict_order(self):
        s = spec()
        payloads = payloads_for(s)
        reversed_payloads = dict(reversed(list(payloads.items())))
        a = merge_campaign(s, payloads)
        b = merge_campaign(s, reversed_payloads)
        assert a.circuits["s27"].vectors == b.circuits["s27"].vectors
        assert a.circuits["s27"].detected == b.circuits["s27"].detected

    def test_rolled_up_report_carries_merged_truth(self):
        s = spec()
        result = merge_campaign(s, payloads_for(s))
        report = result.report
        assert report is not None
        assert report.circuit == "campaign:m"
        assert report.total_faults == result.total_faults
        assert report.detected == result.detected
        assert report.vectors == result.vectors
        assert abs(report.fault_coverage - result.fault_coverage) < 1e-9

    def test_missing_items_tolerated(self):
        s = spec()
        payloads = payloads_for(s)
        payloads.pop(sorted(payloads)[0])
        result = merge_campaign(s, payloads)
        assert result.items_done == len(payloads)
        assert 0.0 < result.fault_coverage <= 1.0

    def test_summary_lines(self):
        s = spec()
        result = merge_campaign(s, payloads_for(s))
        text = result.summary()
        assert "campaign m" in text and "s27" in text
        digest = result.summary_dict()
        assert digest["circuits"]["s27"]["total_faults"] == 26
