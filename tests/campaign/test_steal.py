"""Work-stealing pool invariants: leases, revokes, and determinism.

The lease/steal protocol must never lose or double-credit a fault —
under normal completion, under revocation, under worker death, and under
resume — and the final merged report must be identical no matter how
many workers the items were spread across.
"""

import json

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    WorkQueue,
    build_items,
    read_events,
)


def spec(**overrides):
    base = dict(circuits=("s27",), name="steal", seed=3, shard_size=1,
                passes=1, fault_limit=10)
    base.update(overrides)
    return CampaignSpec(**base)


class TestTakeMany:
    def test_claims_up_to_limit_without_duplicates(self):
        s = spec()
        items = build_items(s)
        queue = WorkQueue(items, s.max_attempts)
        first = queue.take_many(4)
        second = queue.take_many(100)
        ids = [i.item_id for i in first + second]
        assert len(first) == 4
        assert len(ids) == len(set(ids)) == len(items)
        assert queue.take_many(5) == []

    def test_pending_tracks_claimable_items(self):
        s = spec()
        items = build_items(s)
        queue = WorkQueue(items, s.max_attempts)
        assert queue.pending() == len(items)
        taken = queue.take_many(3)
        assert queue.pending() == len(items) - 3
        queue.mark_interrupted(taken[0].item_id)
        assert queue.pending() == len(items) - 2

    def test_interrupted_lease_keeps_attempt_and_seed(self):
        """A revoked (or crash-requeued) lease must not burn an attempt:
        the item reruns with its original seed, exactly as if it had
        never been leased."""
        s = spec(fault_limit=1)
        items = build_items(s)
        queue = WorkQueue(items, s.max_attempts)
        (taken,) = queue.take_many(1)
        queue.mark_interrupted(taken.item_id)
        (again,) = queue.take_many(1)
        assert again.item_id == taken.item_id
        assert again.seed == taken.seed
        assert queue.attempt_of(again.item_id) == 1


class TestPoolProtocol:
    def test_no_item_lost_or_double_credited(self, tmp_path):
        """Every catalogue item lands exactly one ``item_done`` even
        when leases are granted, revoked, and stolen along the way."""
        s = spec(fault_limit=None)  # all 26 per-fault items: steals happen
        journal = str(tmp_path / "pool.jsonl")
        result = CampaignRunner(s, journal, workers=3).run()
        events = read_events(journal)
        done = [e["item"] for e in events if e["type"] == "item_done"]
        catalogue = [i.item_id for i in build_items(s)]
        assert sorted(done) == sorted(catalogue)  # none lost, none twice
        assert result.items_done == len(catalogue)
        assert result.items_failed == 0

    def test_stolen_items_complete_elsewhere(self, tmp_path):
        """Items named by a ``steal`` event still finish exactly once."""
        s = spec(fault_limit=None)
        journal = str(tmp_path / "steal.jsonl")
        CampaignRunner(s, journal, workers=3).run()
        events = read_events(journal)
        stolen = [i for e in events if e["type"] == "steal"
                  for i in e["items"]]
        done = [e["item"] for e in events if e["type"] == "item_done"]
        for item_id in stolen:
            assert done.count(item_id) == 1

    def test_lease_events_cover_all_started_items(self, tmp_path):
        s = spec()
        journal = str(tmp_path / "lease.jsonl")
        CampaignRunner(s, journal, workers=2).run()
        events = read_events(journal)
        leased = {i for e in events if e["type"] == "lease"
                  for i in e["items"]}
        started = {e["item"] for e in events if e["type"] == "item_started"}
        assert started <= leased


class TestWorkerCountDeterminism:
    def test_final_report_identical_across_1_2_4_workers(self, tmp_path):
        """The headline invariant the steal protocol must preserve: with
        isolated knowledge (broadcast off, the default), scheduling is
        invisible — workers=1/2/4 end in the same vectors, detections,
        and coverage."""
        results = {}
        for workers in (1, 2, 4):
            journal = str(tmp_path / f"w{workers}.jsonl")
            results[workers] = CampaignRunner(
                spec(), journal, workers=workers
            ).run()
        reference = results[1]
        for workers in (2, 4):
            result = results[workers]
            assert (result.circuits["s27"].vectors
                    == reference.circuits["s27"].vectors), workers
            assert (result.circuits["s27"].detected
                    == reference.circuits["s27"].detected), workers
            assert result.fault_coverage == reference.fault_coverage

    def test_resume_of_pooled_run_matches_pooled_reference(self, tmp_path):
        """Truncating a pooled journal mid-flight (keeping a lease event
        with no terminal item events, as a SIGKILL would) and resuming
        reproduces the uninterrupted result."""
        ref_journal = str(tmp_path / "ref.jsonl")
        reference = CampaignRunner(spec(), ref_journal, workers=2).run()
        events = read_events(ref_journal)
        partial = tmp_path / "partial.jsonl"
        with open(partial, "w") as handle:
            for event in events:
                if event["type"] in ("campaign", "items", "lease"):
                    handle.write(json.dumps(event) + "\n")
            for event in [e for e in events
                          if e["type"] == "item_done"][:3]:
                handle.write(json.dumps(event) + "\n")
        resumed = CampaignRunner.resume(str(partial), workers=2)
        assert (resumed.circuits["s27"].vectors
                == reference.circuits["s27"].vectors)
        assert (resumed.circuits["s27"].detected
                == reference.circuits["s27"].detected)
        assert resumed.fault_coverage == reference.fault_coverage

    def test_phase_times_reported(self, tmp_path):
        journal = str(tmp_path / "phases.jsonl")
        result = CampaignRunner(spec(), journal, workers=2).run()
        assert set(result.phase_times) == {
            "warm_s", "fork_s", "solve_s", "merge_s"
        }
        assert all(v >= 0.0 for v in result.phase_times.values())
        merged = [e for e in read_events(journal) if e["type"] == "merged"]
        assert merged[0]["summary"]["phase_times"]["fork_s"] >= 0.0
