"""Live knowledge broadcast: the channel, the store wrapper, the campaign.

Two guarantees matter: a fact proven by worker A actually prunes work in
worker B within the same campaign, and broadcast-off (the default)
reproduces the pre-broadcast trajectory exactly — including the spec
hash, so existing journals stay resumable.
"""

import json
import os

from repro.campaign import CampaignRunner, CampaignSpec
from repro.knowledge import BroadcastKnowledge, KnowledgeChannel, StateKnowledge


def channel_pair(tmp_path):
    directory = str(tmp_path / "bcast")
    return (KnowledgeChannel(directory, "w0"),
            KnowledgeChannel(directory, "w1"))


class TestKnowledgeChannel:
    def test_publish_poll_roundtrip(self, tmp_path):
        a, b = channel_pair(tmp_path)
        a.publish({"kind": "justified", "state": [["G10", 1]]})
        facts = b.poll()
        assert len(facts) == 1
        assert facts[0]["kind"] == "justified"
        assert b.poll() == []  # consumed: offsets advance

    def test_own_facts_visible_to_later_polls(self, tmp_path):
        a, _ = channel_pair(tmp_path)
        a.publish({"kind": "justified", "state": [["G10", 1]]})
        assert len(a.poll()) == 1  # a worker's next item sees them

    def test_torn_tail_not_consumed_until_complete(self, tmp_path):
        a, b = channel_pair(tmp_path)
        a.publish({"kind": "justified", "state": [["G10", 1]]})
        with open(a.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "justif')  # mid-write crash
        assert len(b.poll()) == 1  # only the newline-terminated line
        with open(a.path, "a", encoding="utf-8") as handle:
            handle.write('ied", "state": [["G11", 0]], "v": 1}\n')
        assert len(b.poll()) == 1  # the completed tail arrives intact

    def test_garbage_lines_skipped(self, tmp_path):
        a, b = channel_pair(tmp_path)
        with open(a.path, "w", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"v": 99, "kind": "justified"}\n')  # wrong version
        a.publish({"kind": "unjustifiable", "state": [["G11", 0]]})
        facts = b.poll()
        assert len(facts) == 1
        assert facts[0]["kind"] == "unjustifiable"


class TestBroadcastKnowledge:
    def store(self, channel, clock=None):
        return BroadcastKnowledge(
            circuit="s27", fingerprint="unconstrained", channel=channel,
            poll_interval=0.0, clock=clock or (lambda: 0.0),
        )

    def test_worker_a_fact_prunes_work_in_worker_b(self, tmp_path):
        a_chan, b_chan = channel_pair(tmp_path)
        a = self.store(a_chan)
        b = self.store(b_chan)
        # worker B knows nothing yet
        assert b.lookup_justified({"G10": 1}) is None
        # worker A proves a justification and an unjustifiability
        assert a.record_justified({"G10": 1}, [[0, 1, 0], [1, 1, 1]])
        assert a.record_unjustifiable({"G11": 0, "G12": 1}, None)
        assert a.stats["broadcast_published"] == 2
        # worker B's next lookups fold and answer from A's proofs
        assert b.lookup_justified({"G10": 1}) == [[0, 1, 0], [1, 1, 1]]
        assert b.lookup_unjustifiable({"G11": 0, "G12": 1}) == "exhausted"
        assert b.stats["broadcast_folded"] == 2
        assert b.stats["justified_hits"] == 1

    def test_folded_facts_are_not_republished(self, tmp_path):
        a_chan, b_chan = channel_pair(tmp_path)
        a = self.store(a_chan)
        b = self.store(b_chan)
        a.record_justified({"G10": 1}, [[1]])
        b.lookup_justified({"G10": 1})
        assert b.stats["broadcast_published"] == 0
        assert not os.path.exists(b_chan.path)  # b never wrote a line

    def test_duplicate_facts_fold_once(self, tmp_path):
        a_chan, b_chan = channel_pair(tmp_path)
        a = self.store(a_chan)
        a.record_justified({"G10": 1}, [[1]])
        b = self.store(b_chan)  # construction folds the channel
        assert b.stats["broadcast_folded"] == 1
        b.fold()
        assert b.stats["broadcast_folded"] == 1  # already consumed

    def test_poll_interval_limits_channel_reads(self, tmp_path):
        a_chan, b_chan = channel_pair(tmp_path)
        a = self.store(a_chan)
        now = [0.0]
        b = BroadcastKnowledge(
            circuit="s27", fingerprint="unconstrained", channel=b_chan,
            poll_interval=10.0, clock=lambda: now[0],
        )
        a.record_justified({"G10": 1}, [[1]])
        assert b.lookup_justified({"G10": 1}) is None  # inside the interval
        now[0] = 11.0
        assert b.lookup_justified({"G10": 1}) == [[1]]

    def test_preload_sets_gate_without_publishing(self, tmp_path):
        a_chan, _ = channel_pair(tmp_path)
        sidecar = StateKnowledge(circuit="s27")
        sidecar.record_justified({"G10": 1}, [[1]])
        a = self.store(a_chan)
        a.preload(sidecar)
        assert a.preloaded  # the GA seed-pool gate, as for from_dict
        assert a.stats["broadcast_published"] == 0
        assert a.lookup_justified({"G10": 1}) == [[1]]

    def test_mismatched_circuit_facts_ignored(self, tmp_path):
        a_chan, b_chan = channel_pair(tmp_path)
        a = BroadcastKnowledge(circuit="s298", channel=a_chan,
                               poll_interval=0.0, clock=lambda: 0.0)
        a.record_justified({"G10": 1}, [[1]])
        b = self.store(b_chan)
        assert b.lookup_justified({"G10": 1}) is None
        assert b.stats["broadcast_folded"] == 0


class TestBroadcastCampaign:
    def spec(self, **overrides):
        base = dict(circuits=("s27",), name="bc", seed=3, shard_size=1,
                    passes=3, knowledge_broadcast=True)
        base.update(overrides)
        return CampaignSpec(**base)

    def test_pooled_campaign_trades_facts(self, tmp_path):
        journal = str(tmp_path / "bc.jsonl")
        runner = CampaignRunner(self.spec(), journal, workers=2)
        result = runner.run()
        assert result.fault_coverage == 1.0
        assert result.knowledge_stats.get("broadcast_published", 0) >= 1
        assert os.path.isdir(runner.broadcast_dir())

    def test_inline_campaign_ignores_broadcast(self, tmp_path):
        """workers=1 has no peers: the flag must not change results or
        create a channel."""
        on = CampaignRunner(
            self.spec(), str(tmp_path / "on.jsonl"), workers=1
        ).run()
        off = CampaignRunner(
            self.spec(knowledge_broadcast=False, name="bc"),
            str(tmp_path / "off.jsonl"), workers=1,
        ).run()
        assert on.circuits["s27"].vectors == off.circuits["s27"].vectors
        assert on.circuits["s27"].detected == off.circuits["s27"].detected
        assert not os.path.isdir(str(tmp_path / "on.bcast"))


class TestSpecCompatibility:
    def test_broadcast_off_keeps_pre_broadcast_spec_hash(self):
        """The field serializes only when on: untouched specs hash (and
        therefore resume) exactly as before the field existed."""
        s = CampaignSpec(circuits=("s27",), seed=3)
        data = s.to_dict()
        assert "knowledge_broadcast" not in data
        legacy = {k: v for k, v in data.items()}
        assert CampaignSpec.from_dict(legacy).spec_hash() == s.spec_hash()

    def test_broadcast_on_changes_spec_hash_and_round_trips(self):
        off = CampaignSpec(circuits=("s27",), seed=3)
        on = CampaignSpec(circuits=("s27",), seed=3,
                          knowledge_broadcast=True)
        assert on.spec_hash() != off.spec_hash()
        assert on.to_dict()["knowledge_broadcast"] is True
        assert CampaignSpec.from_dict(
            json.loads(json.dumps(on.to_dict()))
        ).spec_hash() == on.spec_hash()
