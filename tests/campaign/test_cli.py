"""CLI coverage for `repro campaign ...` and `repro report --json`."""

import json

import pytest

from repro.cli import main


def run_small_campaign(tmp_path, capsys, extra=()):
    journal = str(tmp_path / "j.jsonl")
    code = main([
        "campaign", "run", "s27",
        "--name", "cli", "--seed", "1", "--shard-size", "8", "--passes", "2",
        "--journal", journal, *extra,
    ])
    out = capsys.readouterr().out
    return code, journal, out


class TestCampaignRun:
    def test_inline_run_prints_summary(self, tmp_path, capsys):
        code, _, out = run_small_campaign(tmp_path, capsys)
        assert code == 0
        assert "campaign cli" in out and "coverage" in out

    def test_writes_report_and_vectors(self, tmp_path, capsys):
        report = str(tmp_path / "report.json")
        out_dir = str(tmp_path / "vectors")
        code, _, out = run_small_campaign(
            tmp_path, capsys,
            extra=["--report", report, "--output-dir", out_dir],
        )
        assert code == 0
        data = json.load(open(report))
        assert data["circuit"] == "campaign:cli"
        vectors = open(f"{out_dir}/s27.vec").read().strip().splitlines()
        assert vectors and all(len(line) == 4 for line in vectors)

    def test_spec_file_and_inline_circuits_conflict(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "schema": "repro-campaign-spec/v1", "circuits": ["s27"],
        }))
        with pytest.raises(SystemExit, match="not both"):
            main(["campaign", "run", "s27", "--spec", str(spec),
                  "--journal", str(tmp_path / "j.jsonl")])

    def test_run_without_circuits_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="circuits"):
            main(["campaign", "run",
                  "--journal", str(tmp_path / "j.jsonl")])


class TestCampaignStatusAndResume:
    def test_status_text_and_json(self, tmp_path, capsys):
        _, journal, _ = run_small_campaign(tmp_path, capsys)
        assert main(["campaign", "status", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "items done" in out and "merged" in out
        assert main(["campaign", "status", "--journal", journal,
                     "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["done"] == status["items"]

    def test_resume_completed_campaign_is_idempotent(
        self, tmp_path, capsys
    ):
        _, journal, first = run_small_campaign(tmp_path, capsys)
        assert main(["campaign", "resume", "--journal", journal]) == 0
        second = capsys.readouterr().out
        assert "coverage 100.0%" in first
        assert "coverage 100.0%" in second


class TestReportJson:
    def make_report(self, tmp_path, capsys, seed):
        path = str(tmp_path / f"report{seed}.json")
        main(["atpg", "s27", "--passes", "2", "--time-scale", "0.05",
              "--seed", str(seed), "--telemetry", path])
        capsys.readouterr()
        return path

    def test_single_report_json(self, tmp_path, capsys):
        path = self.make_report(tmp_path, capsys, 1)
        assert main(["report", path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro-run-report/v1"
        assert data["circuit"] == "s27"

    def test_diff_json(self, tmp_path, capsys):
        a = self.make_report(tmp_path, capsys, 1)
        b = self.make_report(tmp_path, capsys, 2)
        assert main(["report", a, b, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro-report-diff/v1"
        assert "total_faults" in data["fields"]

    def test_diff_json_changed_only_filters(self, tmp_path, capsys):
        a = self.make_report(tmp_path, capsys, 1)
        assert main(["report", a, a, "--json", "--changed-only"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["fields"] == {}
