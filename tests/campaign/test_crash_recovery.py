"""End-to-end crash drill: SIGKILL a live campaign, resume, compare.

This is the subsystem's headline guarantee — a campaign killed at an
arbitrary instant (workers included) resumes from its journal and ends
with exactly the vectors, detections, and coverage of an uninterrupted
run.  The campaign process runs the real CLI in its own process group so
the kill takes out the workers too, just like an OOM killer or a lost
machine would.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, read_events

SPEC = dict(
    circuits=("s27", "s298"),
    name="crash-drill",
    seed=11,
    shard_size=6,
    passes=1,
    fault_limit=12,
)


def wait_for(predicate, timeout_s=60.0, poll_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


def journal_types(path):
    if not os.path.exists(path):
        return []
    return [e.get("type") for e in read_events(path)]


class TestCrashRecovery:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        """The uninterrupted campaign every drill must reproduce."""
        journal = str(tmp_path_factory.mktemp("ref") / "ref.jsonl")
        return CampaignRunner(CampaignSpec(**SPEC), journal).run()

    def test_sigkill_mid_campaign_then_resume_matches(
        self, reference, tmp_path
    ):
        spec_path = str(tmp_path / "spec.json")
        CampaignSpec(**SPEC).save(spec_path)
        journal = str(tmp_path / "crash.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src"),
             env.get("PYTHONPATH", "")]
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run",
             "--spec", spec_path, "--journal", journal, "--workers", "2"],
            env=env,
            start_new_session=True,  # own process group: the kill is total
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # let it finish some items and be mid-flight on others
            assert wait_for(
                lambda: journal_types(journal).count("item_done") >= 1
            ), "campaign never completed an item"
            assert proc.poll() is None, "campaign finished before the kill"
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait(timeout=30)

        kinds = journal_types(journal)
        assert "merged" not in kinds, "kill landed after completion"

        resumed = CampaignRunner.resume(journal, workers=1)
        for circuit in SPEC["circuits"]:
            assert (resumed.circuits[circuit].vectors
                    == reference.circuits[circuit].vectors), circuit
            assert (resumed.circuits[circuit].detected
                    == reference.circuits[circuit].detected), circuit
        assert resumed.fault_coverage == reference.fault_coverage
        assert resumed.items_failed == 0
        assert "merged" in journal_types(journal)

    def test_resume_after_graceful_interrupt_matches(
        self, reference, tmp_path
    ):
        """A partial journal (as after Ctrl-C) resumes to the same result."""
        journal = str(tmp_path / "partial.jsonl")
        full = str(tmp_path / "full.jsonl")
        CampaignRunner(CampaignSpec(**SPEC), full).run()
        events = read_events(full)
        with open(journal, "w") as handle:
            for event in events:
                if event["type"] in ("campaign", "items"):
                    handle.write(json.dumps(event) + "\n")
            for event in [e for e in events if e["type"] == "item_done"][:3]:
                handle.write(json.dumps(event) + "\n")
        resumed = CampaignRunner.resume(journal)
        assert resumed.fault_coverage == reference.fault_coverage
        for circuit in SPEC["circuits"]:
            assert (resumed.circuits[circuit].vectors
                    == reference.circuits[circuit].vectors)
