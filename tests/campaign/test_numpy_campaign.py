"""Campaign smoke test on the numpy simulation backend.

A small campaign runs end-to-end with ``backend="numpy"`` (inline and
through resume), lands the same detections as the event-backend
reference, and — when a kernel cache directory is configured — the
workers actually populate and reuse it.
"""

import json
import os

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, read_events
from repro.simulation import kernel_cache

numpy = pytest.importorskip("numpy")

SPEC = dict(
    circuits=("s27",),
    name="np-smoke",
    seed=7,
    shard_size=8,
    passes=2,
    backend="numpy",
)


def run(tmp_path, name, **overrides):
    params = dict(SPEC)
    params.update(overrides)
    journal = str(tmp_path / name)
    return CampaignRunner(CampaignSpec(**params), journal).run(), journal


class TestNumpyCampaign:
    def test_end_to_end(self, tmp_path):
        result, _ = run(tmp_path, "np.jsonl")
        assert result.items_failed == 0
        assert result.fault_coverage == 1.0
        assert result.circuits["s27"].vectors

    def test_matches_event_backend(self, tmp_path):
        np_run, _ = run(tmp_path, "np.jsonl")
        ev_run, _ = run(tmp_path, "ev.jsonl", backend="event")
        assert (np_run.circuits["s27"].detected
                == ev_run.circuits["s27"].detected)
        assert np_run.fault_coverage == ev_run.fault_coverage

    def test_resume_from_partial_journal(self, tmp_path):
        reference, full = run(tmp_path, "full.jsonl")
        events = read_events(full)
        partial = str(tmp_path / "partial.jsonl")
        with open(partial, "w") as handle:
            for event in events:
                if event["type"] in ("campaign", "items"):
                    handle.write(json.dumps(event) + "\n")
            done = [e for e in events if e["type"] == "item_done"]
            for event in done[: len(done) // 2]:
                handle.write(json.dumps(event) + "\n")
        resumed = CampaignRunner.resume(partial)
        assert resumed.fault_coverage == reference.fault_coverage
        assert (resumed.circuits["s27"].detected
                == reference.circuits["s27"].detected)
        assert resumed.items_failed == 0

    def test_kernel_cache_populated(self, tmp_path, monkeypatch):
        cache = tmp_path / "kernels"
        monkeypatch.setenv(kernel_cache.ENV_VAR, str(cache))
        result, _ = run(tmp_path, "cached.jsonl")
        assert result.items_failed == 0
        entries = [
            f
            for _, _, files in os.walk(cache)
            for f in files
            if f.endswith(".rkc")
        ]
        assert entries  # programs persisted for warm workers
