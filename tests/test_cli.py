"""Tests for the command-line interface."""

import pytest

from repro.cli import main, resolve_circuit
from repro.circuit.bench import save_bench
from repro.circuits import s27


class TestResolve:
    def test_builtin_iscas(self):
        assert resolve_circuit("s27").name == "s27"

    def test_builtin_synth(self):
        assert resolve_circuit("div").name == "div"

    def test_bench_file(self, tmp_path):
        path = str(tmp_path / "c.bench")
        save_bench(s27(), path)
        assert resolve_circuit(path).num_gates == 10

    def test_missing_file(self):
        with pytest.raises(OSError):
            resolve_circuit("/nope/missing.bench")


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "s27"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out and "collapsed faults" in out

    def test_faults(self, capsys):
        assert main(["faults", "s27"]) == 0
        out = capsys.readouterr().out
        assert "s-a-0" in out and "s-a-1" in out
        assert len(out.strip().splitlines()) == 26

    def test_atpg_writes_vectors(self, tmp_path, capsys):
        out_file = str(tmp_path / "tests.vec")
        code = main([
            "atpg", "s27", "-o", out_file,
            "--time-scale", "0.05", "--backtracks", "100", "--seed", "1",
        ])
        assert code == 0
        lines = open(out_file).read().strip().splitlines()
        assert lines and all(len(l) == 4 for l in lines)
        assert "coverage" in capsys.readouterr().out

    def test_atpg_baseline(self, capsys):
        assert main(["atpg", "s27", "--baseline", "--passes", "2",
                     "--time-scale", "0.05"]) == 0
        assert "HITEC" in capsys.readouterr().out

    def test_atpg_prefilter(self, capsys):
        assert main(["atpg", "s27", "--prefilter", "--passes", "1",
                     "--time-scale", "0.05"]) == 0
        assert "prefilter:" in capsys.readouterr().out

    def test_faultsim_roundtrip(self, tmp_path, capsys):
        out_file = str(tmp_path / "tests.vec")
        main(["atpg", "s27", "-o", out_file, "--time-scale", "0.05",
              "--seed", "1"])
        capsys.readouterr()
        assert main(["faultsim", "s27", out_file]) == 0
        assert "faults" in capsys.readouterr().out

    def test_faultsim_rejects_bad_width(self, tmp_path):
        vec = tmp_path / "bad.vec"
        vec.write_text("010\n")
        with pytest.raises(SystemExit):
            main(["faultsim", "s27", str(vec)])

    def test_faultsim_lists_undetected(self, tmp_path, capsys):
        vec = tmp_path / "weak.vec"
        vec.write_text("0000\n")
        assert main(["faultsim", "s27", str(vec), "--list-undetected"]) == 0
        assert "undetected:" in capsys.readouterr().out
