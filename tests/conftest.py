"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27


@pytest.fixture
def s27_circuit() -> Circuit:
    return s27()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


# ----------------------------------------------------------------------
# hypothesis strategy: small random sequential circuits
# ----------------------------------------------------------------------
_COMB_TYPES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
]


@st.composite
def random_circuits(draw, max_pi: int = 4, max_ff: int = 3, max_gates: int = 12):
    """Small random sequential circuits for differential testing."""
    n_pi = draw(st.integers(1, max_pi))
    n_ff = draw(st.integers(0, max_ff))
    n_gates = draw(st.integers(1, max_gates))
    c = Circuit("hyp")
    pool = [c.add_input(f"pi{i}") for i in range(n_pi)]
    ffs = [f"ff{i}" for i in range(n_ff)]
    pool += ffs  # forward references resolved when the DFFs are added
    gate_outs = []
    for i in range(n_gates):
        gtype = draw(st.sampled_from(_COMB_TYPES))
        fanin = 1 if gtype in (GateType.NOT, GateType.BUF) else draw(st.integers(2, 3))
        # only reference already-created combinational nets to stay acyclic
        candidates = pool[: n_pi + n_ff + len(gate_outs)]
        ins = [
            candidates[draw(st.integers(0, len(candidates) - 1))]
            for _ in range(fanin)
        ]
        net = f"g{i}"
        c.add_gate(net, gtype, ins)
        pool.append(net)
        gate_outs.append(net)
    for i, ff in enumerate(ffs):
        src = pool[draw(st.integers(0, len(pool) - 1))]
        if src == ff:
            src = pool[0]
        c.add_gate(ff, GateType.DFF, [src])
    n_po = draw(st.integers(1, min(3, len(gate_outs))))
    chosen = draw(
        st.lists(st.sampled_from(gate_outs), min_size=n_po, max_size=n_po,
                 unique=True)
    )
    for net in chosen:
        c.add_output(net)
    return c


@st.composite
def scalar_vectors(draw, circuit: Circuit, length_max: int = 8):
    """A short random input sequence for ``circuit`` (0/1 scalars)."""
    length = draw(st.integers(1, length_max))
    return [
        {pi: draw(st.integers(0, 1)) for pi in circuit.inputs}
        for _ in range(length)
    ]
