"""Cross-module integration and end-to-end property tests.

These tests tie the whole stack together: every test the ATPG engines
emit must be confirmed by the (independently implemented) fault
simulator, on both crafted and randomly generated circuits.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    Limits,
    SequentialTestGenerator,
    TestGenStatus,
    collapse_faults,
    evaluate_test_set,
    gahitec,
    gahitec_schedule,
    hitec_baseline,
    hitec_schedule,
    justify_state,
)
from repro.circuits import gray_fsm, iscas89, two_stage_pipeline
from repro.simulation import FaultSimulator, X, compile_circuit

from .conftest import random_circuits


class TestAtpgSoundness:
    """No engine may ever emit a test that does not detect its fault."""

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.data_too_large])
    @given(data=st.data())
    def test_random_circuits_generate_valid_tests(self, data):
        circuit = data.draw(random_circuits(max_pi=3, max_ff=3, max_gates=10))
        cc = compile_circuit(circuit)
        gen = SequentialTestGenerator(cc, max_frames=6)
        sim = FaultSimulator(cc)

        def justifier(required):
            return justify_state(cc, required, 8, Limits(2000))

        for fault in collapse_faults(circuit)[:10]:
            res = gen.generate(fault, justifier, Limits(2000))
            if res.status is not TestGenStatus.DETECTED:
                continue
            vectors = [
                [0 if v == X else v for v in vec] for vec in res.sequence
            ]
            outcome = sim.run(vectors, [fault])
            assert fault in outcome.detected, (
                f"{circuit.gates}: {fault} claimed detected but is not"
            )

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_untestable_claims_survive_random_attack(self, data):
        """Faults proven untestable must resist long random sequences."""
        circuit = data.draw(random_circuits(max_pi=3, max_ff=2, max_gates=8))
        cc = compile_circuit(circuit)
        gen = SequentialTestGenerator(cc, max_frames=6)
        sim = FaultSimulator(cc)

        def justifier(required):
            return justify_state(cc, required, 8, Limits(5000))

        untestable = []
        for fault in collapse_faults(circuit)[:8]:
            res = gen.generate(fault, justifier, Limits(5000))
            if res.status is TestGenStatus.UNTESTABLE:
                untestable.append(fault)
        if not untestable:
            return
        rng = random.Random(data.draw(st.integers(0, 999)))
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(200)
        ]
        outcome = sim.run(vectors, untestable)
        assert not outcome.detected, (
            f"'untestable' fault detected by random vectors: "
            f"{list(outcome.detected)} in {circuit.gates}"
        )


class TestDriverEndToEnd:
    def test_both_drivers_agree_on_gray_fsm(self):
        ga = gahitec(gray_fsm(), seed=1).run(
            gahitec_schedule(x=8, time_scale=None, backtrack_base=200)
        )
        det = hitec_baseline(gray_fsm(), seed=1).run(
            hitec_schedule(time_scale=None, backtrack_base=200)
        )
        # the one uncovered fault is rst s-a-0: with the reset stuck off,
        # the faulty machine never leaves the all-X state, so no test can
        # produce a definite good/faulty difference (three-valued
        # semantics); both engines must agree on everything else.
        assert ga.fault_coverage == det.fault_coverage
        assert len(ga.detected) == ga.total_faults - 1

    def test_pipeline_full_coverage(self):
        result = gahitec(two_stage_pipeline(), seed=0).run(
            gahitec_schedule(x=4, time_scale=None, backtrack_base=100)
        )
        assert result.fault_coverage == 1.0

    def test_prefilter_preserves_coverage(self):
        driver = gahitec(iscas89("s27"), seed=1)
        proven = driver.prefilter_untestable()
        result = driver.run(
            gahitec_schedule(x=12, time_scale=None, backtrack_base=100)
        )
        # s27 has no untestable faults, so nothing may be filtered
        assert proven == []
        assert result.fault_coverage == 1.0

    def test_current_state_toggle_changes_nothing_on_s27(self):
        on = gahitec(iscas89("s27"), seed=3).run(
            gahitec_schedule(x=12, time_scale=None, backtrack_base=100)
        )
        from repro.hybrid import HybridTestGenerator

        off = HybridTestGenerator(
            iscas89("s27"), seed=3, use_current_state=False
        ).run(gahitec_schedule(x=12, time_scale=None, backtrack_base=100))
        # both must fully cover this easy circuit (the knob affects speed,
        # not reachability, here)
        assert on.fault_coverage == off.fault_coverage == 1.0

    def test_reported_vectors_reproduce_coverage_on_standin(self):
        result = gahitec(iscas89("s298"), seed=1).run(
            gahitec_schedule(x=16, num_passes=1, time_scale=0.02,
                             backtrack_base=30)
        )
        report = evaluate_test_set(
            iscas89("s298"), result.test_set, collapse_faults(iscas89("s298"))
        )
        assert set(report.detected) == set(result.detected)
