"""HTTP layer: routing, error mapping, SSE streams, report round-trip."""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.service import Router, ServiceError, start_service

SPEC = {
    "circuits": ["s27"],
    "name": "svc-roundtrip",
    "seed": 3,
    "shard_size": 8,
    "passes": 2,
}

#: Host/run-dependent report fields the equivalence check must ignore.
VOLATILE_FIELDS = ("wall_time_s", "cpu_time_s", "jobs")


class TestRouter:
    def router(self):
        router = Router()
        router.add("GET", "/jobs", lambda req: "list")
        router.add("GET", "/jobs/{job_id}", lambda req, job_id: job_id)
        router.add("POST", "/jobs/{job_id}/cancel", lambda req, job_id: job_id)
        return router

    def test_static_and_parameterized_routes(self):
        router = self.router()
        handler, params = router.resolve("GET", "/jobs")
        assert params == {} and handler(None) == "list"
        handler, params = router.resolve("GET", "/jobs/abc123")
        assert params == {"job_id": "abc123"}
        _, params = router.resolve("POST", "/jobs/abc123/cancel")
        assert params == {"job_id": "abc123"}

    def test_unknown_path_is_404(self):
        with pytest.raises(ServiceError) as exc:
            self.router().resolve("GET", "/nope")
        assert exc.value.status == 404

    def test_wrong_method_is_405(self):
        with pytest.raises(ServiceError) as exc:
            self.router().resolve("DELETE", "/jobs")
        assert exc.value.status == 405

    def test_url_escapes_decoded_in_params(self):
        _, params = self.router().resolve("GET", "/jobs/a%20b")
        assert params == {"job_id": "a b"}


def request(base, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def read_sse(base, path, frames):
    """Collect (event, payload) SSE frames until the stream ends."""
    with urllib.request.urlopen(base + path) as resp:
        event = None
        for raw in resp:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: "):
                frames.append((event, json.loads(line[len("data: "):])))
                if event in ("end", "error"):
                    return


class ServiceHarness:
    """One in-process service; HTTP calls run in executor threads."""

    def __init__(self, root, **kwargs):
        self.root = root
        self.kwargs = kwargs
        self.base = None

    async def __aenter__(self):
        self.server, self.manager, (host, port) = await start_service(
            str(self.root), poll_interval=0.02, **self.kwargs
        )
        self.base = f"http://{host}:{port}"
        return self

    async def __aexit__(self, *exc):
        await self.server.close()
        await self.manager.stop()

    async def request(self, method, path, body=None):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, request, self.base, method, path, body
        )

    async def stream(self, path, timeout=60.0):
        """Run a blocking SSE client in a thread; await its frames."""
        frames = []
        thread = threading.Thread(
            target=read_sse, args=(self.base, path, frames), daemon=True
        )
        thread.start()
        for _ in range(int(timeout / 0.02)):
            if not thread.is_alive():
                return frames
            await asyncio.sleep(0.02)
        raise AssertionError(f"SSE stream {path} did not end")

    async def wait_done(self, job_id, timeout=120.0):
        for _ in range(int(timeout / 0.05)):
            _, body = await self.request("GET", f"/jobs/{job_id}")
            if body["state"] in ("done", "failed", "cancelled"):
                return body
            await asyncio.sleep(0.05)
        raise AssertionError("job never finished")


def comparable(report_dict):
    data = {k: v for k, v in report_dict.items() if k not in VOLATILE_FIELDS}
    # wall-clock leaks into metrics histograms and per-row timings too
    data.pop("metrics", None)
    for key in ("faults", "passes"):
        data[key] = [
            {k: v for k, v in row.items() if k != "time_s"}
            for row in data.get(key, [])
        ]
    return data


class TestServiceEndToEnd:
    def test_submit_stream_report_roundtrip(self, tmp_path):
        async def scenario():
            direct_journal = str(tmp_path / "direct.jsonl")
            async with ServiceHarness(tmp_path / "svc") as svc:
                status, body = await svc.request(
                    "POST", "/jobs", {"spec": SPEC, "client": "t"}
                )
                assert status == 201 and body["created"]
                job_id = body["job"]
                assert job_id == CampaignSpec.from_dict(SPEC).spec_hash()

                # resubmission dedups instead of recomputing
                status, again = await svc.request("POST", "/jobs", {"spec": SPEC})
                assert status == 200 and not again["created"]
                assert again["job"] == job_id

                frames = await svc.stream(f"/jobs/{job_id}/events")
                assert frames[0][0] == "job"
                assert frames[-1][0] == "end"
                assert frames[-1][1]["state"] == "done"
                journal_kinds = [
                    f[1]["type"] for f in frames if f[0] == "journal"
                ]
                assert journal_kinds[0] == "campaign"
                assert journal_kinds[-1] == "merged"
                assert "item_done" in journal_kinds

                final = await svc.wait_done(job_id)
                assert final["state"] == "done"
                assert final["summary"]["fault_coverage"] == 1.0

                status, served = await svc.request(
                    "GET", f"/jobs/{job_id}/report"
                )
                assert status == 200

                status, knowledge = await svc.request(
                    "GET", f"/jobs/{job_id}/knowledge"
                )
                assert status == 200
                assert knowledge["schema"] == "repro-knowledge/v1"

                status, diff = await svc.request(
                    "GET", f"/jobs/{job_id}/report/diff?against={job_id}"
                )
                assert status == 200
                assert all(
                    row["delta"] == 0 for row in diff["fields"].values()
                )
            return served, direct_journal

        served, direct_journal = asyncio.run(scenario())

        # the served report must match a direct campaign run of the same
        # spec, modulo volatile host/timing fields
        direct = CampaignRunner(
            CampaignSpec.from_dict(SPEC), direct_journal
        ).run()
        assert comparable(served) == comparable(direct.report.to_dict())

    def test_stream_of_finished_job_replays_and_ends(self, tmp_path):
        async def scenario():
            async with ServiceHarness(tmp_path) as svc:
                _, body = await svc.request("POST", "/jobs", {"spec": SPEC})
                await svc.wait_done(body["job"])
                frames = await svc.stream(f"/jobs/{body['job']}/events")
                kinds = [f[0] for f in frames]
                assert kinds[0] == "job" and kinds[-1] == "end"
                assert kinds.count("journal") >= 3

        asyncio.run(scenario())

    def test_error_statuses(self, tmp_path):
        async def scenario():
            async with ServiceHarness(tmp_path) as svc:
                assert (await svc.request("GET", "/healthz"))[0] == 200
                assert (await svc.request("GET", "/nope"))[0] == 404
                assert (await svc.request("DELETE", "/jobs"))[0] == 405
                assert (await svc.request("GET", "/jobs/ffff"))[0] == 404
                status, body = await svc.request("POST", "/jobs", {"spec": 5})
                assert status == 400 and "error" in body
                status, _ = await svc.request(
                    "POST", "/jobs", {"spec": {"circuits": []}}
                )
                assert status == 400
                status, _ = await svc.request(
                    "POST", "/jobs",
                    {"spec": dict(SPEC, circuits=["no-such"]) },
                )
                assert status == 400
                status, _ = await svc.request(
                    "GET", "/jobs/ffff/report/diff"
                )
                assert status == 404  # unknown job wins over missing param

        asyncio.run(scenario())

    def test_queue_full_maps_to_429(self, tmp_path):
        async def scenario():
            # no dispatcher interference: drown the queue faster than two
            # drill jobs can drain by bounding it at 1
            async with ServiceHarness(tmp_path, max_queue=1) as svc:
                specs = [
                    dict(SPEC, seed=i, synthetic_item_seconds=0.2,
                         fault_limit=4, shard_size=1)
                    for i in range(8)
                ]
                statuses = []
                for spec in specs:
                    status, _ = await svc.request(
                        "POST", "/jobs", {"spec": spec}
                    )
                    statuses.append(status)
                assert 429 in statuses

        asyncio.run(scenario())

    def test_upload_circuit_then_submit_it(self, tmp_path):
        bench = (
            "# tiny\n"
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
            "y = AND(a, b)\n"
        )
        async def scenario():
            async with ServiceHarness(tmp_path) as svc:
                status, body = await svc.request(
                    "POST", "/circuits", {"bench": bench}
                )
                assert status == 201
                assert body["inputs"] == 2 and body["outputs"] == 1
                # idempotent: same content, same path
                _, again = await svc.request(
                    "POST", "/circuits", {"bench": bench}
                )
                assert again["path"] == body["path"]
                status, job = await svc.request(
                    "POST", "/jobs",
                    {"spec": dict(SPEC, circuits=[body["path"]])},
                )
                assert status == 201
                final = await svc.wait_done(job["job"])
                assert final["state"] == "done"

                status, _ = await svc.request(
                    "POST", "/circuits", {"bench": "y = AND(a\n"}
                )
                assert status == 400

        asyncio.run(scenario())
