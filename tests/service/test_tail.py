"""JournalTail: the incremental torn-tail-tolerant journal reader."""

import json

import pytest

from repro.campaign import CampaignError, Journal, JournalTail, read_events


def append_raw(path, text):
    with open(path, "ab") as handle:
        handle.write(text.encode("utf-8"))


class TestIncrementalPoll:
    def test_consumes_each_event_exactly_once(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        tail = JournalTail(path)
        journal.append({"type": "a"})
        journal.append({"type": "b"})
        assert [e["type"] for e in tail.poll()] == ["a", "b"]
        assert tail.poll() == []
        journal.append({"type": "c"})
        assert [e["type"] for e in tail.poll()] == ["c"]
        journal.close()

    def test_missing_journal_reads_as_empty(self, tmp_path):
        tail = JournalTail(str(tmp_path / "never-written.jsonl"))
        assert tail.poll() == []
        assert tail.poll() == []

    def test_file_appearing_later_is_picked_up(self, tmp_path):
        path = str(tmp_path / "late.jsonl")
        tail = JournalTail(path)
        assert tail.poll() == []
        with Journal(path) as journal:
            journal.append({"type": "late"})
        assert [e["type"] for e in tail.poll()] == ["late"]


class TestTornTail:
    def test_torn_tail_is_never_consumed(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        with Journal(path) as journal:
            journal.append({"type": "whole"})
        append_raw(path, '{"type": "to')  # mid-write kill: no newline
        tail = JournalTail(path)
        assert [e["type"] for e in tail.poll()] == ["whole"]
        # the torn bytes stay unread until the line completes
        assert tail.poll() == []
        append_raw(path, 'rn"}\n')
        assert [e["type"] for e in tail.poll()] == ["torn"]

    def test_writer_reopen_truncation_is_invisible(self, tmp_path):
        # the writer only ever truncates a newline-less tail, which the
        # tail never consumed — so the offset stays valid across it
        path = str(tmp_path / "t.jsonl")
        with Journal(path) as journal:
            journal.append({"type": "first"})
        append_raw(path, '{"type": "torn')
        tail = JournalTail(path)
        assert [e["type"] for e in tail.poll()] == ["first"]
        with Journal(path) as journal:  # reopen drops the torn tail
            journal.append({"type": "second"})
        assert [e["type"] for e in tail.poll()] == ["second"]

    def test_corrupt_complete_line_raises_with_location(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with Journal(path) as journal:
            journal.append({"type": "ok"})
        append_raw(path, "not json at all\n")
        tail = JournalTail(path)
        with pytest.raises(CampaignError, match=r"bad\.jsonl:2: corrupt"):
            tail.poll()


class TestReadEvents:
    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_events(str(tmp_path / "absent.jsonl"))

    def test_drains_whole_journal_tolerating_torn_tail(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with Journal(path) as journal:
            journal.append({"type": "a"})
            journal.append({"type": "b"})
        append_raw(path, '{"type": "torn')
        assert [e["type"] for e in read_events(path)] == ["a", "b"]

    def test_matches_tail_poll(self, tmp_path):
        path = str(tmp_path / "same.jsonl")
        with Journal(path) as journal:
            for i in range(5):
                journal.append({"type": "e", "i": i})
        assert read_events(path) == JournalTail(path).poll()
        with open(path) as handle:
            assert len(handle.read().splitlines()) == 5
        assert json.loads(open(path).readline())["i"] == 0
