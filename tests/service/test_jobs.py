"""JobManager: queue policy, lifecycle, cancellation, restart recovery."""

import asyncio
import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, Journal
from repro.service import (
    CANCELLED,
    DONE,
    JobManager,
    QUEUED,
    RUNNING,
    ServiceError,
)
from repro.telemetry import TelemetryRecorder


def drill_spec(**overrides):
    """A drill-mode spec: orchestration only, no real ATPG."""
    base = dict(circuits=("s27",), name="jobs-test", seed=1, shard_size=8,
                fault_limit=8, synthetic_item_seconds=0.001)
    base.update(overrides)
    return CampaignSpec(**base)


async def wait_for(job, states, timeout=30.0):
    for _ in range(int(timeout / 0.01)):
        if job.state in states:
            return job
        await asyncio.sleep(0.01)
    raise AssertionError(f"job stuck in {job.state}")


class TestQueuePolicy:
    """Submission rules, checked without a running dispatcher."""

    def manager(self, tmp_path, **kwargs):
        return JobManager(str(tmp_path), **kwargs)

    def test_submit_is_idempotent_by_spec_hash(self, tmp_path):
        manager = self.manager(tmp_path)
        job, created = manager.submit(drill_spec())
        again, created2 = manager.submit(drill_spec())
        assert created and not created2
        assert again is job
        assert job.job_id == drill_spec().spec_hash()

    def test_dedup_ignores_client_and_priority(self, tmp_path):
        manager = self.manager(tmp_path)
        job, _ = manager.submit(drill_spec(), client="a", priority="low")
        again, created = manager.submit(
            drill_spec(), client="b", priority="high"
        )
        assert not created and again.client == "a"

    def test_unknown_priority_rejected(self, tmp_path):
        with pytest.raises(ServiceError) as exc:
            self.manager(tmp_path).submit(drill_spec(), priority="urgent")
        assert exc.value.status == 400

    def test_full_queue_rejected_with_429(self, tmp_path):
        manager = self.manager(tmp_path, max_queue=2)
        manager.submit(drill_spec(seed=1))
        manager.submit(drill_spec(seed=2))
        with pytest.raises(ServiceError) as exc:
            manager.submit(drill_spec(seed=3))
        assert exc.value.status == 429

    def test_client_quota_counts_live_jobs_only(self, tmp_path):
        manager = self.manager(tmp_path, client_quota=2)
        manager.submit(drill_spec(seed=1), client="greedy")
        manager.submit(drill_spec(seed=2), client="greedy")
        with pytest.raises(ServiceError) as exc:
            manager.submit(drill_spec(seed=3), client="greedy")
        assert exc.value.status == 429
        # other clients are unaffected
        manager.submit(drill_spec(seed=3), client="polite")

    def test_priority_lanes_drain_high_first(self, tmp_path):
        manager = self.manager(tmp_path)
        manager.submit(drill_spec(seed=1), priority="low")
        manager.submit(drill_spec(seed=2), priority="normal")
        high, _ = manager.submit(drill_spec(seed=3), priority="high")
        assert manager._next_job() is high
        assert manager._next_job().priority == "normal"
        assert manager._next_job().priority == "low"
        assert manager._next_job() is None

    def test_cancel_queued_job_immediately(self, tmp_path):
        manager = self.manager(tmp_path)
        job, _ = manager.submit(drill_spec())
        assert manager.cancel(job.job_id).state == CANCELLED
        assert manager.queue_depth() == 0
        with pytest.raises(ServiceError) as exc:
            manager.cancel(job.job_id)  # already terminal
        assert exc.value.status == 409

    def test_resume_requeues_only_terminal_failures(self, tmp_path):
        manager = self.manager(tmp_path)
        job, _ = manager.submit(drill_spec())
        with pytest.raises(ServiceError) as exc:
            manager.resume_job(job.job_id)  # still queued
        assert exc.value.status == 409
        manager.cancel(job.job_id)
        assert manager.resume_job(job.job_id).state == QUEUED

    def test_unknown_job_is_404(self, tmp_path):
        with pytest.raises(ServiceError) as exc:
            self.manager(tmp_path).get("feedfacecafebeef")
        assert exc.value.status == 404


class TestExecution:
    def test_drill_job_runs_to_done(self, tmp_path):
        async def scenario():
            manager = JobManager(
                str(tmp_path), telemetry=TelemetryRecorder()
            )
            await manager.start()
            try:
                job, _ = manager.submit(drill_spec())
                await wait_for(job, {DONE})
                assert job.summary["items_done"] > 0
                assert job.summary["items_failed"] == 0
                assert job.finished_ts >= job.started_ts >= job.submitted_ts
                stats = manager.stats()
                assert stats["states"] == {DONE: 1}
                counters = stats["metrics"]["counters"]
                assert counters["service.jobs.completed"] == 1
            finally:
                await manager.stop()

        asyncio.run(scenario())

    def test_running_job_cancels_then_resumes_to_done(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path))
            await manager.start()
            try:
                # slow items so cancel lands mid-run
                job, _ = manager.submit(
                    drill_spec(shard_size=1, synthetic_item_seconds=0.05)
                )
                await wait_for(job, {RUNNING})
                manager.cancel(job.job_id)
                await wait_for(job, {CANCELLED})
                assert job.cancel_event.is_set()
                manager.resume_job(job.job_id)
                await wait_for(job, {DONE})
                assert job.summary["items_failed"] == 0
            finally:
                await manager.stop()

        asyncio.run(scenario())

    def test_failed_job_parks_with_error(self, tmp_path):
        async def scenario():
            manager = JobManager(str(tmp_path))
            await manager.start()
            try:
                job, _ = manager.submit(
                    drill_spec(circuits=("no-such-circuit",))
                )
                await wait_for(job, {"failed"})
                assert job.error
            finally:
                await manager.stop()

        asyncio.run(scenario())


class TestRecovery:
    def test_completed_journal_recovers_as_done(self, tmp_path):
        spec = drill_spec()
        job_id = spec.spec_hash()
        journal = str(tmp_path / f"{job_id}.jsonl")
        CampaignRunner(spec, journal).run()

        manager = JobManager(str(tmp_path))
        manager.recover()
        job = manager.get(job_id)
        assert job.state == DONE
        assert job.summary["fault_coverage"] == 0.0  # drill: nothing graded
        # resubmitting the same spec dedups against the recovered job
        again, created = manager.submit(spec)
        assert not created and again is job

    def test_unfinished_journal_recovers_as_queued_resume(self, tmp_path):
        spec = drill_spec()
        job_id = spec.spec_hash()
        path = tmp_path / f"{job_id}.jsonl"
        with Journal(str(path)) as journal:
            journal.append({
                "type": "campaign",
                "schema": "repro-campaign-journal/v1",
                "name": spec.name, "spec": spec.to_dict(),
                "spec_hash": job_id, "items": 1,
            })
        manager = JobManager(str(tmp_path))
        manager.recover()
        job = manager.get(job_id)
        assert job.state == QUEUED
        assert manager.queue_depth() == 1

    def test_recovered_resume_completes(self, tmp_path):
        async def scenario():
            spec = drill_spec()
            job_id = spec.spec_hash()
            path = tmp_path / f"{job_id}.jsonl"
            with Journal(str(path)) as journal:
                journal.append({
                    "type": "campaign",
                    "schema": "repro-campaign-journal/v1",
                    "name": spec.name, "spec": spec.to_dict(),
                    "spec_hash": job_id, "items": 1,
                })
            manager = JobManager(str(tmp_path))
            await manager.start()
            try:
                job = manager.get(job_id)
                await wait_for(job, {DONE})
                assert job.summary["items_done"] > 0
                assert job.summary["items_failed"] == 0
            finally:
                await manager.stop()

        asyncio.run(scenario())

    def test_unreadable_journal_is_skipped_not_fatal(self, tmp_path):
        (tmp_path / "deadbeef00000000.jsonl").write_text("not json\n")
        telemetry = TelemetryRecorder()
        manager = JobManager(str(tmp_path), telemetry=telemetry)
        manager.recover()
        assert manager.jobs == {}
        assert telemetry.value("service.jobs.unreadable") == 1

    def test_foreign_json_in_root_is_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        (tmp_path / "report.json").write_text(json.dumps({"x": 1}))
        manager = JobManager(str(tmp_path))
        manager.recover()
        assert manager.jobs == {}
