"""POST /policies uploads and policy-steered job submission."""

import asyncio

from repro.campaign import CampaignRunner, CampaignSpec
from repro.policy.dataset import dataset_from_reports
from repro.policy.model import train_policy

from .test_http import SPEC, ServiceHarness


def trained_policy_doc(tmp_path):
    result = CampaignRunner(
        CampaignSpec.from_dict(SPEC), str(tmp_path / "train.jsonl")
    ).run()
    policy = train_policy(dataset_from_reports([result.report]))
    return policy.to_dict()


class TestPolicyEndpoint:
    def test_upload_validate_and_submit(self, tmp_path):
        doc = trained_policy_doc(tmp_path)

        async def scenario():
            async with ServiceHarness(tmp_path / "svc") as svc:
                status, body = await svc.request(
                    "POST", "/policies", {"policy": doc}
                )
                assert status == 201
                assert body["circuits"] == ["s27"]
                assert body["fingerprint"] == doc["fingerprint"]
                path = body["path"]

                # idempotent: same document, same content address
                _, again = await svc.request(
                    "POST", "/policies", {"policy": doc}
                )
                assert again["path"] == path

                status, job = await svc.request(
                    "POST", "/jobs",
                    {"spec": dict(SPEC, policy_file=path)},
                )
                assert status == 201
                final = await svc.wait_done(job["job"])
                assert final["state"] == "done"
                assert final["summary"]["fault_coverage"] == 1.0

        asyncio.run(scenario())

    def test_invalid_policy_rejected(self, tmp_path):
        async def scenario():
            async with ServiceHarness(tmp_path) as svc:
                status, body = await svc.request(
                    "POST", "/policies", {"policy": {"schema": "nope"}}
                )
                assert status == 400 and "error" in body
                # nothing persisted for the rejected upload
                assert not list(
                    (tmp_path / "policies").glob("*.json")
                )

        asyncio.run(scenario())

    def test_submit_with_missing_policy_file_is_400(self, tmp_path):
        async def scenario():
            async with ServiceHarness(tmp_path) as svc:
                status, body = await svc.request(
                    "POST", "/jobs",
                    {"spec": dict(
                        SPEC, policy_file=str(tmp_path / "gone.json")
                    )},
                )
                assert status == 400 and "error" in body

        asyncio.run(scenario())

    def test_policy_job_matches_direct_run(self, tmp_path):
        doc = trained_policy_doc(tmp_path)

        async def scenario():
            async with ServiceHarness(tmp_path / "svc") as svc:
                _, upload = await svc.request(
                    "POST", "/policies", {"policy": doc}
                )
                spec = dict(SPEC, policy_file=upload["path"])
                _, job = await svc.request(
                    "POST", "/jobs", {"spec": spec}
                )
                final = await svc.wait_done(job["job"])
                assert final["state"] == "done"
                _, report = await svc.request(
                    "GET", f"/jobs/{job['job']}/report"
                )
                return spec, report

        spec_data, served = asyncio.run(scenario())
        direct = CampaignRunner(
            CampaignSpec.from_dict(spec_data),
            str(tmp_path / "direct.jsonl"),
        ).run()
        assert served["fault_coverage"] == (
            direct.report.fault_coverage
        )
        assert served["detected"] == direct.report.detected
        assert served["vectors"] == direct.report.vectors

        # policy counters rolled up into the served report
        counters = served.get("metrics", {}).get("counters", {})
        assert any(k.startswith("atpg.policy.") for k in counters)
