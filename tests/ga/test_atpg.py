"""Tests for the simulation-based (GA-only) test generator."""

import pytest

from repro.analysis import evaluate_test_set
from repro.circuits import s27, two_stage_pipeline
from repro.faults.collapse import collapse_faults
from repro.ga.atpg import GAAtpgParams, GASimulationTestGenerator


class TestGASimulation:
    @pytest.fixture(scope="class")
    def result(self):
        return GASimulationTestGenerator(s27(), seed=1).run(
            GAAtpgParams(seq_len=8)
        )

    def test_detects_all_s27_faults(self, result):
        assert len(result.detected) == result.total_faults

    def test_claims_verified_by_resimulation(self, result):
        report = evaluate_test_set(s27(), result.test_set, collapse_faults(s27()))
        assert set(report.detected) == set(result.detected)

    def test_never_claims_untestable(self, result):
        assert all(p.untestable == 0 for p in result.passes)
        assert result.untestable == []

    def test_detection_indices_point_into_test_set(self, result):
        for fault, base in result.detected.items():
            assert 0 <= base < len(result.test_set)

    def test_rounds_are_cumulative(self, result):
        dets = [p.detected for p in result.passes]
        assert dets == sorted(dets)

    def test_generator_label(self, result):
        assert result.generator == "GA-SIM"


class TestTermination:
    def test_stale_rounds_stop(self):
        # an all-constant circuit: only a couple of faults are detectable,
        # then every round is stale
        gen = GASimulationTestGenerator(two_stage_pipeline(), seed=0)
        result = gen.run(GAAtpgParams(seq_len=4, stale_rounds=2))
        assert len(result.detected) == result.total_faults  # easy circuit

    def test_max_vectors_cap(self):
        gen = GASimulationTestGenerator(s27(), seed=0)
        result = gen.run(GAAtpgParams(seq_len=8, max_vectors=8))
        assert len(result.test_set) <= 16  # cap checked per round

    def test_time_limit_respected(self):
        gen = GASimulationTestGenerator(s27(), seed=0)
        result = gen.run(GAAtpgParams(seq_len=8), time_limit=0.0)
        assert result.test_set == []

    def test_reproducible(self):
        a = GASimulationTestGenerator(s27(), seed=9).run(GAAtpgParams(seq_len=8))
        b = GASimulationTestGenerator(s27(), seed=9).run(GAAtpgParams(seq_len=8))
        assert a.test_set == b.test_set

    def test_explicit_fault_list(self):
        faults = collapse_faults(s27())[:5]
        result = GASimulationTestGenerator(s27(), seed=1).run(
            GAAtpgParams(seq_len=8), faults=faults
        )
        assert result.total_faults == 5
