"""Tests for the simple GA engine and its operators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ga.engine import (
    GAParams,
    GeneticAlgorithm,
    TournamentSelector,
    mutate,
    uniform_crossover,
)
from repro.simulation.encoding import popcount


class TestMutate:
    @given(st.integers(0, 2**64 - 1), st.integers(0, 99))
    def test_zero_rate_is_identity(self, genome, seed):
        assert mutate(genome, 64, 0.0, random.Random(seed)) == genome

    @given(st.integers(0, 2**32 - 1))
    def test_rate_one_flips_everything(self, genome):
        flipped = mutate(genome, 32, 1.0, random.Random(0))
        assert flipped == genome ^ ((1 << 32) - 1)

    def test_mutation_rate_statistics(self):
        """Flip count over many genomes matches the 1/64 rate (±30%)."""
        rng = random.Random(7)
        n_bits, trials, rate = 1024, 200, 1.0 / 64.0
        flips = sum(
            popcount(mutate(0, n_bits, rate, rng)) for _ in range(trials)
        )
        expected = n_bits * trials * rate
        assert 0.7 * expected < flips < 1.3 * expected

    def test_never_touches_bits_beyond_length(self):
        rng = random.Random(1)
        for _ in range(100):
            assert mutate(0, 8, 0.5, rng) < (1 << 8)


class TestCrossover:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1), st.integers(0, 99))
    def test_children_preserve_bit_multiset(self, a, b, seed):
        ca, cb = uniform_crossover(a, b, 32, random.Random(seed))
        for bit in range(32):
            m = 1 << bit
            assert sorted([bool(a & m), bool(b & m)]) == sorted(
                [bool(ca & m), bool(cb & m)]
            )

    def test_swap_rate_near_half(self):
        rng = random.Random(3)
        n_bits, trials = 256, 100
        a, b = 0, (1 << n_bits) - 1
        swapped = sum(popcount(uniform_crossover(a, b, n_bits, rng)[0])
                      for _ in range(trials))
        expected = n_bits * trials / 2
        assert 0.85 * expected < swapped < 1.15 * expected


class TestTournament:
    def test_without_replacement_semantics(self):
        """Each refill consumes every individual exactly once."""
        rng = random.Random(5)
        selector = TournamentSelector(rng)
        fitnesses = [float(i) for i in range(10)]
        picks = [selector.select(fitnesses) for _ in range(5)]
        # 5 selections = 10 draws = exactly one full pool consumption
        assert len(picks) == 5
        # the best individual is guaranteed to win its tournament
        assert 9 in picks

    def test_winner_is_fitter(self):
        rng = random.Random(6)
        selector = TournamentSelector(rng)
        fitnesses = [0.0, 1.0]
        for _ in range(10):
            assert selector.select(fitnesses) == 1


class TestGeneticAlgorithm:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm(0, GAParams(), lambda g: ([0.0], None))
        with pytest.raises(ValueError):
            GeneticAlgorithm(8, GAParams(population_size=7),
                             lambda g: ([0.0] * 7, None))

    def test_solves_onemax(self):
        """Fitness pressure must raise the population's bit count."""
        n_bits = 32

        def evaluator(genomes):
            return [popcount(g) for g in genomes], None

        ga = GeneticAlgorithm(
            n_bits,
            GAParams(population_size=64, generations=20),
            evaluator,
            rng=random.Random(0),
        )
        result = ga.run()
        assert result.best_fitness >= 28  # near-optimal out of 32

    def test_early_exit_payload(self):
        calls = []

        def evaluator(genomes):
            calls.append(len(genomes))
            return [0.0] * len(genomes), "found"

        ga = GeneticAlgorithm(
            8, GAParams(population_size=4, generations=10), evaluator,
            rng=random.Random(0),
        )
        result = ga.run()
        assert result.payload == "found"
        assert result.generations_run == 1
        assert len(calls) == 1

    def test_runs_all_generations_without_payload(self):
        def evaluator(genomes):
            return [0.0] * len(genomes), None

        ga = GeneticAlgorithm(
            8, GAParams(population_size=4, generations=5), evaluator,
            rng=random.Random(0),
        )
        result = ga.run()
        assert result.payload is None
        assert result.generations_run == 5
        assert result.evaluations == 20

    def test_best_ever_is_saved_across_generations(self):
        """The best individual may appear early and must not be lost."""
        seen_best = []

        def evaluator(genomes):
            fits = [popcount(g) for g in genomes]
            seen_best.append(max(fits))
            return fits, None

        ga = GeneticAlgorithm(
            16, GAParams(population_size=8, generations=6), evaluator,
            rng=random.Random(42),
        )
        result = ga.run()
        assert result.best_fitness == max(seen_best)

    def test_reproducible_with_same_seed(self):
        def evaluator(genomes):
            return [popcount(g) for g in genomes], None

        def run(seed):
            return GeneticAlgorithm(
                16, GAParams(population_size=8, generations=4), evaluator,
                rng=random.Random(seed),
            ).run().best_genome

        assert run(9) == run(9)
