"""Tests for genetic state justification."""

import random

import pytest

from repro.atpg.justify import JustifyStatus
from repro.circuits import counter, gray_fsm, s27, two_stage_pipeline
from repro.faults.model import Fault
from repro.ga.justification import GAJustifyParams, GAStateJustifier
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X, pack_const, unpack
from repro.simulation.fault_sim import injection_for
from repro.simulation.logic_sim import FrameSimulator


def verify(circuit, required, vectors, start_state=None, fault=None):
    """Check the sequence really produces the required state."""
    cc = compile_circuit(circuit)
    injections = [injection_for(cc, fault, 1)] if fault else []
    sim = FrameSimulator(cc, width=1, injections=injections)
    if start_state is not None and not fault:
        sim.set_state([pack_const(v, 1) for v in start_state])
    for vec in vectors:
        sim.step([pack_const(v, 1) for v in vec])
    state = dict(zip(circuit.flops, sim.get_state()))
    for net, want in required.items():
        assert unpack(state[net], 1)[0] == want


class TestJustify:
    def test_pipeline_state(self):
        circuit = two_stage_pipeline()
        j = GAStateJustifier(circuit, rng=random.Random(0))
        res = j.justify({"f1": 1, "f2": 0},
                        GAJustifyParams(seq_len=4, population_size=16))
        assert res.success
        verify(circuit, {"f1": 1, "f2": 0}, res.vectors)
        verify(circuit, {"f1": 1, "f2": 0}, res.vectors, fault=None)

    def test_counter_state(self):
        circuit = counter(3)
        j = GAStateJustifier(circuit, rng=random.Random(1))
        required = {"q0": 1, "q1": 1, "q2": 0}
        res = j.justify(
            required,
            GAJustifyParams(seq_len=8, population_size=64, generations=8),
        )
        assert res.success
        verify(circuit, required, res.vectors)

    def test_gray_fsm_state(self):
        circuit = gray_fsm()
        j = GAStateJustifier(circuit, rng=random.Random(2))
        required = {"s0": 1, "s1": 1}
        res = j.justify(
            required, GAJustifyParams(seq_len=6, population_size=32)
        )
        assert res.success
        verify(circuit, required, res.vectors)

    def test_failure_is_bounded_not_exhausted(self):
        """A GA can never prove unjustifiability."""
        circuit = counter(8)
        j = GAStateJustifier(circuit, rng=random.Random(3))
        # counting to 255 within 2 vectors is impossible
        required = {f"q{i}": 1 for i in range(8)}
        res = j.justify(
            required, GAJustifyParams(seq_len=2, population_size=8,
                                      generations=1),
        )
        assert not res.success
        assert res.status is JustifyStatus.BOUNDED

    def test_early_exit_shortens_sequence(self):
        """The coded length is an upper bound, not the returned length."""
        circuit = two_stage_pipeline()
        j = GAStateJustifier(circuit, rng=random.Random(4))
        res = j.justify({"f1": 1}, GAJustifyParams(seq_len=16,
                                                   population_size=32))
        assert res.success
        assert len(res.vectors) < 16

    def test_uses_current_good_state(self):
        """Starting from a matching state needs fewer (or zero) vectors."""
        circuit = counter(3)
        j = GAStateJustifier(circuit, rng=random.Random(5))
        required = {"q0": 1, "q1": 1}
        # current state already has q0=q1=1: with the fault-free default
        # requirement the faulty circuit must still be driven there, so a
        # sequence is still needed — but it must exist and verify from the
        # given start state in the good circuit.
        res = j.justify(
            required,
            GAJustifyParams(seq_len=8, population_size=64, generations=8),
            current_good_state=[1, 1, 0],
        )
        assert res.success
        verify(circuit, required, res.vectors, start_state=[1, 1, 0])

    def test_fault_injected_in_faulty_circuit(self):
        """With the fault present, the faulty state must also match."""
        circuit = two_stage_pipeline()
        fault = Fault("a", 0)
        j = GAStateJustifier(circuit, rng=random.Random(6))
        # requiring f1=1 in BOTH circuits is impossible: faulty a is stuck 0
        res = j.justify(
            {"f1": 1},
            GAJustifyParams(seq_len=8, population_size=32, generations=4),
            fault=fault,
        )
        assert not res.success

    def test_fitness_weights_configurable(self):
        params = GAJustifyParams(good_weight=0.5, faulty_weight=0.5)
        assert params.good_weight == 0.5

    def test_decode_layout(self):
        circuit = s27()  # 4 PIs
        j = GAStateJustifier(circuit)
        genome = 0b1010_0110  # vector0 = 0110, vector1 = 1010 (LSB first)
        vectors = j.decode(genome, seq_len=2, n_vectors=2)
        assert vectors[0] == [0, 1, 1, 0]
        assert vectors[1] == [0, 1, 0, 1]

    def test_reproducible(self):
        def run(seed):
            j = GAStateJustifier(counter(3), rng=random.Random(seed))
            return j.justify(
                {"q0": 1}, GAJustifyParams(seq_len=4, population_size=16)
            ).vectors

        assert run(7) == run(7)
