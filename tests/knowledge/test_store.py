"""Unit tests for the StateKnowledge store semantics.

Both subsumption directions, the proof-strength ordering on
unjustifiable entries, contradiction guards, eviction bounds, and the
merge rules — these are the properties docs/KNOWLEDGE.md promises and the
ATPG engines rely on for soundness.
"""

import pytest

from repro.knowledge import (
    KNOWLEDGE_SCHEMA,
    KnowledgeError,
    StateKnowledge,
    state_key,
)


def make_store(**kwargs) -> StateKnowledge:
    return StateKnowledge(circuit="unit", **kwargs)


class TestJustifiedLookup:
    def test_exact_hit_returns_a_copy(self):
        store = make_store()
        store.record_justified({"q0": 1}, [[0, 1], [1, 0]])
        seq = store.lookup_justified({"q0": 1})
        assert seq == [[0, 1], [1, 0]]
        seq[0][0] = 9  # mutating the answer must not corrupt the store
        assert store.lookup_justified({"q0": 1}) == [[0, 1], [1, 0]]

    def test_superset_subsumes_query(self):
        """A sequence pinning MORE flip-flops answers a weaker query."""
        store = make_store()
        store.record_justified({"q0": 1, "q1": 0}, [[1]])
        assert store.lookup_justified({"q0": 1}) == [[1]]
        assert store.stats["justified_hits"] == 1

    def test_subset_does_not_subsume_query(self):
        """A sequence pinning FEWER flip-flops proves nothing extra."""
        store = make_store()
        store.record_justified({"q0": 1}, [[1]])
        assert store.lookup_justified({"q0": 1, "q1": 0}) is None
        assert store.stats["misses"] == 1

    def test_conflicting_value_is_not_a_hit(self):
        store = make_store()
        store.record_justified({"q0": 1}, [[1]])
        assert store.lookup_justified({"q0": 0}) is None

    def test_empty_requirement_is_trivially_justified(self):
        assert make_store().lookup_justified({}) == []

    def test_shorter_sequence_replaces_longer(self):
        store = make_store()
        store.record_justified({"q0": 1}, [[0], [1], [1]])
        store.record_justified({"q0": 1}, [[1]])
        assert store.lookup_justified({"q0": 1}) == [[1]]
        # and a longer one never displaces the shorter one
        store.record_justified({"q0": 1}, [[0], [1]])
        assert store.lookup_justified({"q0": 1}) == [[1]]


class TestUnjustifiableLookup:
    def test_absolute_proof_answers_any_depth(self):
        store = make_store()
        store.record_unjustifiable({"q0": 1, "q1": 1}, None)
        assert store.lookup_unjustifiable({"q0": 1, "q1": 1}) == "exhausted"
        assert (
            store.lookup_unjustifiable({"q0": 1, "q1": 1}, max_depth=999)
            == "exhausted"
        )

    def test_subset_subsumes_query(self):
        """If q0=1 alone is unreachable, so is q0=1 plus anything else."""
        store = make_store()
        store.record_unjustifiable({"q0": 1}, None)
        assert (
            store.lookup_unjustifiable({"q0": 1, "q1": 0}) == "exhausted"
        )

    def test_superset_does_not_subsume_query(self):
        store = make_store()
        store.record_unjustifiable({"q0": 1, "q1": 1}, None)
        assert store.lookup_unjustifiable({"q0": 1}) is None

    def test_depth_bounded_proof_respects_query_depth(self):
        store = make_store()
        store.record_unjustifiable({"q0": 1}, 3)
        assert store.lookup_unjustifiable({"q0": 1}, max_depth=2) == "bounded"
        assert store.lookup_unjustifiable({"q0": 1}, max_depth=3) == "bounded"
        # a deeper search might still succeed: no verdict
        assert store.lookup_unjustifiable({"q0": 1}, max_depth=4) is None
        # and with no depth given, bounded proofs are never consulted
        assert store.lookup_unjustifiable({"q0": 1}) is None

    def test_proof_strength_ordering(self):
        store = make_store()
        store.record_unjustifiable({"q0": 1}, 2)
        store.record_unjustifiable({"q0": 1}, 1)  # weaker: ignored
        assert store.unjustifiable[state_key({"q0": 1})] == 2
        store.record_unjustifiable({"q0": 1}, 5)  # stronger: replaces
        assert store.unjustifiable[state_key({"q0": 1})] == 5
        store.record_unjustifiable({"q0": 1}, None)  # absolute: wins
        assert store.unjustifiable[state_key({"q0": 1})] is None
        store.record_unjustifiable({"q0": 1}, 7)  # cannot demote absolute
        assert store.unjustifiable[state_key({"q0": 1})] is None


class TestContradictionGuards:
    def test_justified_fact_blocks_unjustifiable_claim(self):
        store = make_store()
        store.record_justified({"q0": 1}, [[1]])
        store.record_unjustifiable({"q0": 1}, None)
        assert state_key({"q0": 1}) not in store.unjustifiable
        assert store.lookup_justified({"q0": 1}) == [[1]]

    def test_justified_fact_evicts_stale_unjustifiable_claim(self):
        store = make_store()
        store.record_unjustifiable({"q0": 1}, 3)
        store.record_justified({"q0": 1}, [[1], [0]])
        assert state_key({"q0": 1}) not in store.unjustifiable
        assert store.lookup_unjustifiable({"q0": 1}, max_depth=1) is None


class TestSeedPool:
    def test_success_feeds_pool_most_recent_first(self):
        store = make_store()
        store.record_justified({"q0": 1}, [[1]])
        store.record_justified({"q1": 1}, [[0], [1]])
        assert store.seed_sequences(2) == [[[0], [1]], [[1]]]

    def test_pool_is_bounded_fifo_without_duplicates(self):
        store = make_store(max_seeds=3)
        for i in range(5):
            store.add_seed([[i]])
        store.add_seed([[4]])  # duplicate: ignored
        assert store.seed_pool == [[[2]], [[3]], [[4]]]

    def test_seed_request_tops_up_from_justified_table(self):
        store = make_store()
        store.justified[state_key({"q0": 1})] = [[1]]
        assert store.seed_sequences(2) == [[[1]]]

    def test_only_deserialized_stores_count_as_preloaded(self):
        """GA seeding keys off this: fresh in-run stores must not
        perturb the GA trajectory of a knowledge-off run."""
        fresh = make_store()
        assert not fresh.preloaded
        fresh.add_seed([[1]])
        assert not fresh.preloaded
        assert StateKnowledge.from_dict(fresh.to_dict()).preloaded


class TestBounds:
    def test_justified_table_evicts_oldest(self):
        store = make_store(max_entries=2)
        store.record_justified({"q0": 1}, [[1]])
        store.record_justified({"q1": 1}, [[0]])
        store.record_justified({"q2": 1}, [[1]])
        assert len(store.justified) == 2
        assert state_key({"q0": 1}) not in store.justified


class TestMergeAndSerialization:
    def test_roundtrip_preserves_facts_and_resets_stats(self):
        store = make_store()
        store.record_justified({"q0": 1}, [[1], [0]])
        store.record_unjustifiable({"q1": 1}, None)
        store.record_unjustifiable({"q2": 1, "q0": 0}, 4)
        doc = store.to_dict()
        assert doc["schema"] == KNOWLEDGE_SCHEMA
        clone = StateKnowledge.from_dict(doc)
        assert clone.circuit == "unit"
        assert clone.justified == store.justified
        assert clone.unjustifiable == store.unjustifiable
        assert clone.seed_pool == store.seed_pool
        assert all(v == 0 for v in clone.stats.values())

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(KnowledgeError):
            StateKnowledge.from_dict({"schema": "repro-knowledge/v0"})

    def test_merge_takes_strongest_of_each_fact(self):
        a = make_store()
        a.record_justified({"q0": 1}, [[1], [0]])
        a.record_unjustifiable({"q1": 1}, 2)
        b = make_store()
        b.record_justified({"q0": 1}, [[1]])  # shorter
        b.record_unjustifiable({"q1": 1}, None)  # absolute
        b.record_unjustifiable({"q2": 1}, 3)  # new
        a.merge(b)
        assert a.lookup_justified({"q0": 1}) == [[1]]
        assert a.unjustifiable[state_key({"q1": 1})] is None
        assert a.unjustifiable[state_key({"q2": 1})] == 3

    def test_merge_rejects_other_circuit_or_fingerprint(self):
        a = make_store()
        with pytest.raises(KnowledgeError):
            a.merge(StateKnowledge(circuit="other"))
        with pytest.raises(KnowledgeError):
            a.merge(
                StateKnowledge(circuit="unit", fingerprint="fixed[a=0]hold[]")
            )

    def test_merge_is_commutative_on_fact_sets(self):
        def populated(order):
            s = make_store()
            for required, depth in order:
                s.record_unjustifiable(required, depth)
            return s

        facts = [({"q0": 1}, 3), ({"q1": 0}, None), ({"q2": 1}, 1)]
        left = populated(facts)
        right = populated(list(reversed(facts)))
        left_clone = StateKnowledge.from_dict(left.to_dict())
        left_clone.merge(right)
        right.merge(left)
        assert left_clone.unjustifiable == right.unjustifiable
