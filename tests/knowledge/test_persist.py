"""Sidecar persistence: atomic save, tolerant load, fingerprint gating."""

import json
import os

import pytest

from repro.knowledge import (
    KNOWLEDGE_SCHEMA,
    KnowledgeError,
    StateKnowledge,
    load_knowledge,
    load_store_for,
    save_knowledge,
)


def two_stores():
    a = StateKnowledge(circuit="s27")
    a.record_justified({"G5": 1}, [[0, 1, 0, 1]])
    b = StateKnowledge(circuit="s298")
    b.record_unjustifiable({"G10": 1, "G11": 1}, None)
    return {"s27": a, "s298": b}


class TestSidecarRoundtrip:
    def test_save_then_load(self, tmp_path):
        path = str(tmp_path / "campaign.knowledge.json")
        save_knowledge(two_stores(), path)
        loaded = load_knowledge(path)
        assert sorted(loaded) == ["s27", "s298"]
        assert loaded["s27"].lookup_justified({"G5": 1}) == [[0, 1, 0, 1]]
        assert (
            loaded["s298"].lookup_unjustifiable({"G10": 1, "G11": 1})
            == "exhausted"
        )

    def test_save_is_atomic(self, tmp_path):
        path = str(tmp_path / "k.json")
        save_knowledge(two_stores(), path)
        save_knowledge(two_stores(), path)  # overwrite in place
        assert not os.path.exists(path + ".tmp")
        assert load_knowledge(path)

    def test_bare_single_store_document_loads(self, tmp_path):
        store = StateKnowledge(circuit="s27")
        store.record_justified({"G5": 1}, [[1]])
        path = tmp_path / "single.json"
        path.write_text(json.dumps(store.to_dict()))
        loaded = load_knowledge(str(path))
        assert loaded["s27"].lookup_justified({"G5": 1}) == [[1]]

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v1", "stores": {}}))
        with pytest.raises(KnowledgeError):
            load_knowledge(str(path))


class TestLoadStoreFor:
    def test_selects_matching_circuit(self, tmp_path):
        path = str(tmp_path / "k.json")
        save_knowledge(two_stores(), path)
        store = load_store_for(path, "s27", "unconstrained")
        assert store is not None and store.circuit == "s27"

    def test_none_path_and_missing_circuit(self, tmp_path):
        assert load_store_for(None, "s27", "unconstrained") is None
        path = str(tmp_path / "k.json")
        save_knowledge(two_stores(), path)
        assert load_store_for(path, "s9234", "unconstrained") is None

    def test_fingerprint_mismatch_is_ignored_not_fatal(self, tmp_path):
        constrained = StateKnowledge(
            circuit="s27", fingerprint="fixed[a=0]hold[]"
        )
        constrained.record_unjustifiable({"G5": 1}, None)
        path = str(tmp_path / "k.json")
        save_knowledge({"s27": constrained}, path)
        assert load_store_for(path, "s27", "unconstrained") is None
        assert (
            load_store_for(path, "s27", "fixed[a=0]hold[]") is not None
        )
