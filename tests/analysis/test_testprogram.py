"""Tests for test-program export with expected responses."""

import random

from repro.analysis.testprogram import (
    build_test_program,
    parse_test_program,
    verify_test_program,
)
from repro.circuits import s27, two_stage_pipeline
from repro.simulation.encoding import X


def random_vectors(circuit, count, seed=0):
    rng = random.Random(seed)
    return [[rng.getrandbits(1) for _ in circuit.inputs] for _ in range(count)]


class TestBuild:
    def test_lengths_match(self):
        circuit = s27()
        vectors = random_vectors(circuit, 10)
        program = build_test_program(circuit, vectors)
        assert len(program) == 10
        assert all(len(r) == 1 for r in program.responses)

    def test_early_responses_may_be_x(self):
        circuit = two_stage_pipeline()
        program = build_test_program(circuit, [[1], [1], [1]])
        assert program.responses[0] == [X]  # state not initialised yet
        assert program.responses[2] == [1]

    def test_responses_are_fault_free_simulation(self):
        circuit = s27()
        vectors = random_vectors(circuit, 20, seed=3)
        program = build_test_program(circuit, vectors)
        assert verify_test_program(circuit, program)


class TestRoundtrip:
    def test_render_parse_roundtrip(self):
        circuit = s27()
        program = build_test_program(circuit, random_vectors(circuit, 5))
        again = parse_test_program(program.render())
        assert again.circuit_name == "s27"
        assert again.inputs == program.inputs
        assert again.outputs == program.outputs
        assert again.vectors == program.vectors
        assert again.responses == program.responses

    def test_file_roundtrip(self, tmp_path):
        circuit = s27()
        program = build_test_program(circuit, random_vectors(circuit, 5))
        path = tmp_path / "prog.txt"
        program.save(str(path))
        again = parse_test_program(path.read_text())
        assert again.vectors == program.vectors

    def test_x_marks_preserved(self):
        circuit = two_stage_pipeline()
        program = build_test_program(circuit, [[1]])
        text = program.render()
        assert "| x" in text
        assert parse_test_program(text).responses == [[X]]

    def test_parse_rejects_missing_separator(self):
        import pytest

        with pytest.raises(ValueError):
            parse_test_program("# circuit: z\n0101\n")


class TestVerify:
    def test_detects_corrupted_response(self):
        circuit = s27()
        program = build_test_program(circuit, random_vectors(circuit, 8))
        # corrupt the last strobed response
        for i in reversed(range(len(program))):
            if program.responses[i][0] != X:
                program.responses[i][0] ^= 1
                break
        assert not verify_test_program(circuit, program)
