"""Tests for fault-dictionary diagnosis."""

import random

import pytest

from repro.analysis.diagnosis import FaultDictionary
from repro.circuits import s27
from repro.faults.collapse import collapse_faults


@pytest.fixture(scope="module")
def dictionary():
    circuit = s27()
    rng = random.Random(8)
    vectors = [[rng.getrandbits(1) for _ in circuit.inputs] for _ in range(60)]
    return FaultDictionary(circuit, vectors)


class TestDictionary:
    def test_detected_faults_have_signatures(self, dictionary):
        for fault in dictionary.detected_faults:
            assert dictionary.signatures[fault]

    def test_most_faults_detected(self, dictionary):
        assert len(dictionary.detected_faults) >= 24  # of 26

    def test_resolution_in_range(self, dictionary):
        assert 0.0 < dictionary.diagnostic_resolution() <= 1.0

    def test_classes_partition_detected_faults(self, dictionary):
        classes = dictionary.distinguishable_classes()
        flattened = [f for cls in classes for f in cls]
        assert sorted(flattened) == sorted(dictionary.detected_faults)


class TestDiagnosis:
    def test_injected_fault_ranks_first_and_exact(self, dictionary):
        for fault in dictionary.detected_faults:
            ranked = dictionary.diagnose_fault(fault, top=3)
            assert ranked, str(fault)
            assert fault in ranked[0].faults
            assert ranked[0].exact

    def test_unrelated_failures_rank_lower(self, dictionary):
        fault = dictionary.detected_faults[0]
        failures = sorted(dictionary.signatures[fault])
        # corrupt the observation with a bogus failure position
        failures.append((10_000, 0))
        ranked = dictionary.diagnose(failures, top=3)
        assert ranked
        assert fault in ranked[0].faults
        assert ranked[0].misses == 1  # the bogus failure stays unexplained

    def test_no_failures_means_no_candidates(self, dictionary):
        assert dictionary.diagnose([]) == []

    def test_top_limits_results(self, dictionary):
        fault = dictionary.detected_faults[0]
        ranked = dictionary.diagnose_fault(fault, top=2)
        assert len(ranked) <= 2
