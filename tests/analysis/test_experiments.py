"""Tests for multi-seed sweeps."""

import pytest

from repro.analysis.experiments import Stat, SeedSweep, compare_sweeps, seed_sweep
from repro.circuits import s27
from repro.hybrid import gahitec, gahitec_schedule


def make_run(seed: int):
    return gahitec(s27(), seed=seed).run(
        gahitec_schedule(x=12, num_passes=2, time_scale=None,
                         backtrack_base=100)
    )


@pytest.fixture(scope="module")
def sweep():
    return seed_sweep("GA-HITEC", make_run, seeds=(0, 1, 2))


class TestStat:
    def test_single_value(self):
        from repro.analysis.experiments import _stat

        s = _stat([5.0])
        assert s.mean == 5.0 and s.std == 0.0
        assert str(s) == "5.0"

    def test_mean_and_std(self):
        from repro.analysis.experiments import _stat

        s = _stat([1.0, 3.0])
        assert s.mean == 2.0
        assert s.std == pytest.approx(2.0 ** 0.5)
        assert "±" in str(s)


class TestSweep:
    def test_runs_all_seeds(self, sweep):
        assert sweep.seeds == 3
        assert all(r.generator == "GA-HITEC" for r in sweep.runs)

    def test_final_stats(self, sweep):
        det = sweep.final("detected")
        assert det.n == 3
        assert 20 <= det.mean <= 26  # s27 nearly fully covered in 2 passes

    def test_per_pass_lengths(self, sweep):
        assert len(sweep.per_pass("detected")) == 2

    def test_summary_renders(self, sweep):
        text = sweep.summary()
        assert "pass 1" in text and "pass 2" in text

    def test_compare_renders(self, sweep):
        text = compare_sweeps([sweep])
        assert "GA-HITEC" in text and "coverage" in text
        assert "%" in text
