"""Tests for sequence-level test-set compaction."""

import random

from repro.analysis.compaction import compact_test_set, split_blocks
from repro.analysis.coverage import evaluate_test_set
from repro.circuits import s27
from repro.faults.collapse import collapse_faults
from repro.hybrid import gahitec, gahitec_schedule


class TestSplitBlocks:
    def test_basic_split(self):
        vectors = [[i] for i in range(10)]
        blocks = split_blocks(vectors, [0, 4, 7])
        assert [len(b) for b in blocks] == [4, 3, 3]
        assert blocks[1][0] == [4]

    def test_zero_base_implied(self):
        blocks = split_blocks([[1], [2], [3]], [2])
        assert [len(b) for b in blocks] == [2, 1]

    def test_empty(self):
        assert split_blocks([], []) == []


class TestCompaction:
    def _run(self):
        driver = gahitec(s27(), seed=1)
        return driver.run(
            gahitec_schedule(x=12, time_scale=None, backtrack_base=100)
        )

    def test_coverage_preserved(self):
        result = self._run()
        faults = collapse_faults(s27())
        compacted = compact_test_set(
            s27(), result.test_set, list(result.detected.values()), faults
        )
        before = evaluate_test_set(s27(), result.test_set, faults)
        after = evaluate_test_set(s27(), compacted.vectors, faults)
        assert len(after.detected) == len(before.detected)
        assert compacted.coverage == len(before.detected)

    def test_never_grows(self):
        result = self._run()
        compacted = compact_test_set(
            s27(), result.test_set, list(result.detected.values())
        )
        assert compacted.compacted_vectors <= compacted.original_vectors
        assert 0.0 <= compacted.reduction <= 1.0

    def test_padded_test_set_shrinks(self):
        """Obvious redundancy (a duplicated test set) must be removed."""
        result = self._run()
        doubled = result.test_set + result.test_set
        bases = list(result.detected.values()) + [len(result.test_set)]
        compacted = compact_test_set(s27(), doubled, bases)
        assert compacted.compacted_vectors < len(doubled)

    def test_kept_blocks_in_order(self):
        result = self._run()
        compacted = compact_test_set(
            s27(), result.test_set, list(result.detected.values())
        )
        assert compacted.kept_blocks == sorted(compacted.kept_blocks)
