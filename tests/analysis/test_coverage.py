"""Tests for coverage accounting."""

from repro.analysis.coverage import (
    CoverageReport,
    atpg_efficiency,
    evaluate_test_set,
    random_baseline,
    random_vectors,
)
from repro.circuits import s27
from repro.faults.collapse import collapse_faults


class TestEvaluateTestSet:
    def test_empty_test_set(self):
        report = evaluate_test_set(s27(), [])
        assert report.coverage == 0.0
        assert report.vectors == 0

    def test_default_fault_list_is_collapsed(self):
        report = evaluate_test_set(s27(), [[0, 0, 0, 0]])
        assert report.total_faults == len(collapse_faults(s27()))

    def test_random_vectors_reproducible(self):
        assert random_vectors(s27(), 10, seed=3) == random_vectors(s27(), 10, seed=3)
        assert random_vectors(s27(), 10, seed=3) != random_vectors(s27(), 10, seed=4)

    def test_random_baseline_covers_most_of_s27(self):
        report = random_baseline(s27(), 200, seed=1)
        assert report.coverage > 0.85
        assert report.vectors == 200

    def test_str_format(self):
        report = CoverageReport(total_faults=10)
        report.vectors = 5
        assert "0/10" in str(report)

    def test_undetected(self):
        report = random_baseline(s27(), 100, seed=1)
        assert report.undetected == report.total_faults - len(report.detected)


class TestEfficiency:
    def test_formula(self):
        assert atpg_efficiency(8, 1, 10) == 0.9

    def test_empty(self):
        assert atpg_efficiency(0, 0, 0) == 0.0
