"""Tests for the paper-style table renderer and shape checks."""

from repro.analysis.tables import TableEntry, render_table, shape_checks
from repro.hybrid.results import PassStats, RunResult


def fake_run(generator, detected_per_pass, untestable_per_pass):
    r = RunResult("s298", generator, total_faults=308)
    vec = 0
    for i, (d, u) in enumerate(zip(detected_per_pass, untestable_per_pass), 1):
        vec += 50
        r.passes.append(
            PassStats(i, "ga" if i < 3 else "deterministic",
                      detected=d, vectors=vec, time_s=10.0 * i, untestable=u)
        )
    return r


def entry():
    return TableEntry(
        circuit="s298",
        seq_depth=8,
        total_faults=308,
        left=fake_run("GA-HITEC", [255, 264, 265], [0, 0, 26]),
        right=fake_run("HITEC", [261, 265, 265], [21, 26, 26]),
    )


class TestRenderTable:
    def test_contains_header_and_values(self):
        text = render_table([entry()])
        assert "GA-HITEC" in text and "HITEC" in text
        assert "s298" in text
        assert "255" in text and "261" in text

    def test_one_row_per_pass(self):
        text = render_table([entry()])
        data_lines = [l for l in text.splitlines() if "|" in l and "Det" not in l]
        assert len(data_lines) == 3

    def test_handles_missing_right(self):
        e = entry()
        e.right = None
        text = render_table([e])
        assert "s298" in text


class TestShapeChecks:
    def test_agreeing_untestables_pass(self):
        lines = shape_checks([entry()])
        assert any("final untestable" in l and "[PASS]" in l for l in lines)

    def test_divergent_untestables_fail(self):
        e = entry()
        e.right = fake_run("HITEC", [261, 265, 265], [21, 26, 100])
        lines = shape_checks([e])
        assert any("final untestable" in l and "[FAIL]" in l for l in lines)

    def test_pass1_detection_comparison_reported(self):
        lines = shape_checks([entry()])
        assert any("pass-1 detections" in l for l in lines)
