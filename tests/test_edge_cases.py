"""Edge-case and degenerate-input tests across the stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.bench import parse_bench, write_bench
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.validate import check
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.hybrid import gahitec, gahitec_schedule, hitec_baseline, hitec_schedule
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X, pack_const, unpack
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.logic_sim import FrameSimulator

from .conftest import random_circuits


def combinational() -> Circuit:
    c = Circuit("comb")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("y", GateType.NAND, ["a", "b"])
    c.add_output("y")
    return check(c)


class TestCombinationalDegenerate:
    """A circuit with no flip-flops must flow through the whole stack."""

    def test_driver_full_coverage(self):
        result = gahitec(combinational(), seed=0).run(
            gahitec_schedule(x=2, time_scale=None, backtrack_base=100)
        )
        assert result.fault_coverage == 1.0

    def test_sequential_depth_zero(self):
        assert combinational().sequential_depth == 0

    def test_fault_sim(self):
        c = combinational()
        result = FaultSimulator(c).run([[0, 0], [0, 1], [1, 0], [1, 1]],
                                       collapse_faults(c))
        assert len(result.detected) == len(collapse_faults(c))


class TestConstantsInCircuits:
    def _with_consts(self):
        c = Circuit("consts")
        c.add_input("a")
        c.add_gate("one", GateType.CONST1, [])
        c.add_gate("zero", GateType.CONST0, [])
        c.add_gate("y1", GateType.AND, ["a", "one"])
        c.add_gate("y2", GateType.OR, ["a", "zero"])
        c.add_output("y1")
        c.add_output("y2")
        return check(c)

    def test_simulation(self):
        c = self._with_consts()
        sim = FrameSimulator(c, width=1)
        po = sim.step({"a": pack_const(1, 1)})
        assert [unpack(v, 1)[0] for v in po] == [1, 1]

    def test_const_faults_partially_untestable(self):
        """one s-a-1 is undetectable (it is already 1); one s-a-0 is not."""
        c = self._with_consts()
        vectors = [[0], [1]]
        result = FaultSimulator(c).run(vectors, [Fault("one", 1), Fault("one", 0)])
        assert Fault("one", 0) in result.detected
        assert Fault("one", 1) not in result.detected

    def test_atpg_handles_constants(self):
        result = hitec_baseline(self._with_consts(), seed=0).run(
            hitec_schedule(time_scale=None, backtrack_base=200)
        )
        # every fault classified: detected or proven untestable
        assert len(result.detected) + len(result.untestable) == result.total_faults


class TestEmptyAndTiny:
    def test_empty_fault_list_run(self):
        result = gahitec(combinational(), seed=0, faults=[]).run(
            gahitec_schedule(x=2, time_scale=None, backtrack_base=10)
        )
        assert result.total_faults == 0
        assert result.fault_coverage == 0.0
        assert result.test_set == []

    def test_single_gate_circuit(self):
        c = Circuit("tiny")
        c.add_input("a")
        c.add_gate("y", GateType.BUF, ["a"])
        c.add_output("y")
        result = gahitec(check(c), seed=0).run(
            gahitec_schedule(x=2, time_scale=None, backtrack_base=10)
        )
        assert result.fault_coverage == 1.0

    def test_simulator_width_one_slot(self):
        sim = FrameSimulator(combinational(), width=1)
        po = sim.step([pack_const(1, 1), pack_const(1, 1)])
        assert unpack(po[0], 1) == [0]


class TestBenchFuzzRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_random_circuit_bench_roundtrip(self, data):
        circuit = data.draw(random_circuits())
        again = parse_bench(write_bench(circuit), circuit.name)
        assert again.inputs == circuit.inputs
        assert again.outputs == circuit.outputs
        assert again.gates == circuit.gates


class TestXPropagationInvariants:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_x_refinement_monotone(self, data):
        """Replacing an X input by a definite value never *creates* X."""
        circuit = data.draw(random_circuits(max_ff=0))
        cc = compile_circuit(circuit)
        vec_x = {}
        vec_def = {}
        for pi in circuit.inputs:
            value = data.draw(st.sampled_from([0, 1, X]))
            vec_x[pi] = value
            vec_def[pi] = data.draw(st.integers(0, 1)) if value == X else value
        sim_x = FrameSimulator(cc, width=1)
        sim_x.apply_inputs({k: pack_const(v, 1) for k, v in vec_x.items()})
        sim_x.settle()
        sim_d = FrameSimulator(cc, width=1)
        sim_d.apply_inputs({k: pack_const(v, 1) for k, v in vec_def.items()})
        sim_d.settle()
        for net in circuit.nets:
            loose = unpack(sim_x.read(net), 1)[0]
            tight = unpack(sim_d.read(net), 1)[0]
            if loose != X:
                assert tight == loose, f"{net}: {loose} -> {tight}"
