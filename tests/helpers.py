"""Shared test utilities: reference simulation and bus-level driving."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.simulation.encoding import X, pack_const, unpack
from repro.simulation.logic_sim import FrameSimulator


def reference_step(
    circuit: Circuit,
    state: Dict[str, int],
    vector: Dict[str, int],
) -> "tuple[Dict[str, int], Dict[str, int]]":
    """One frame of dead-simple interpretive 3-valued simulation.

    An independent oracle for the production simulator: no events, no
    packing — evaluate every net by recursive descent with memoisation.

    Args:
        circuit: circuit to simulate.
        state: flip-flop output values before the frame (0/1/X scalars).
        vector: primary input values (0/1/X scalars).

    Returns:
        ``(po_values, next_state)`` as name->scalar dicts.
    """
    values: Dict[str, int] = {}

    def evaluate(net: str) -> int:
        if net in values:
            return values[net]
        if net in vector:
            values[net] = vector[net]
            return values[net]
        gate = circuit.gates[net]
        if gate.gtype is GateType.DFF:
            values[net] = state.get(net, X)
            return values[net]
        ins = [evaluate(src) for src in gate.inputs]
        values[net] = _eval3_scalar(gate.gtype, ins)
        return values[net]

    po = {net: evaluate(net) for net in circuit.outputs}
    nxt = {ff: evaluate(circuit.gates[ff].inputs[0]) for ff in circuit.flops}
    return po, nxt


def _eval3_scalar(gtype: GateType, ins: List[int]) -> int:
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return X if ins[0] == X else 1 - ins[0]
    if gtype in (GateType.AND, GateType.NAND):
        if 0 in ins:
            v = 0
        elif X in ins:
            v = X
        else:
            v = 1
        return v if gtype is GateType.AND else (X if v == X else 1 - v)
    if gtype in (GateType.OR, GateType.NOR):
        if 1 in ins:
            v = 1
        elif X in ins:
            v = X
        else:
            v = 0
        return v if gtype is GateType.OR else (X if v == X else 1 - v)
    if gtype in (GateType.XOR, GateType.XNOR):
        if X in ins:
            return X
        v = sum(ins) & 1
        return v if gtype is GateType.XOR else 1 - v
    raise ValueError(gtype)


def reference_sequence(
    circuit: Circuit,
    vectors: Sequence[Dict[str, int]],
    initial_state: Optional[Dict[str, int]] = None,
) -> List[Dict[str, int]]:
    """Reference simulation of a whole sequence from a given state."""
    state = dict(initial_state or {})
    outputs = []
    for vec in vectors:
        po, state = reference_step(circuit, state, vec)
        outputs.append(po)
    return outputs


# ----------------------------------------------------------------------
# bus-level driving of the production simulator (scalars, width 1)
# ----------------------------------------------------------------------
def bus_nets(circuit: Circuit, prefix: str, from_outputs: bool = False) -> List[str]:
    """Nets named ``prefix_0 .. prefix_{n-1}`` (or exactly ``prefix``)."""
    pool = circuit.outputs if from_outputs else circuit.inputs
    if prefix in pool:
        return [prefix]
    nets = [n for n in pool if n.startswith(prefix)]
    suffix = lambda n: n[len(prefix):].lstrip("_q").lstrip("_")
    return sorted(nets, key=lambda n: int("".join(ch for ch in suffix(n) if ch.isdigit()) or 0))


def drive(sim: FrameSimulator, circuit: Circuit, **fields: int) -> Dict[str, int]:
    """Apply one frame with named scalar bus values.

    Returns the frame's primary-output scalars (the values *before* the
    clock edge — what a tester would strobe), keyed by PO net name.
    """
    vec = {}
    for name, value in fields.items():
        nets = [n for n in circuit.inputs if n == name or n.startswith(f"{name}_")]
        if nets == [name]:
            vec[name] = pack_const(value & 1, 1)
        else:
            nets.sort(key=lambda n: int(n.rsplit("_", 1)[1]))
            for i, net in enumerate(nets):
                vec[net] = pack_const((value >> i) & 1, 1)
    po = sim.step(vec)
    return {
        net: unpack(v, 1)[0] for net, v in zip(circuit.outputs, po)
    }


def frame_bus(outputs: Dict[str, int], nets: Sequence[str]) -> Optional[int]:
    """Read a little-endian bus out of one frame's PO scalars."""
    value = 0
    for i, net in enumerate(nets):
        bit = outputs[net]
        if bit == X:
            return None
        value |= bit << i
    return value


def read_bus(sim: FrameSimulator, nets: Sequence[str]) -> Optional[int]:
    """Read a little-endian bus of nets; None when any bit is X."""
    value = 0
    for i, net in enumerate(nets):
        bit = unpack(sim.read(net), 1)[0]
        if bit == X:
            return None
        value |= bit << i
    return value


def read_bit(sim: FrameSimulator, net: str) -> int:
    """Read one net's scalar value (may be X)."""
    return unpack(sim.read(net), 1)[0]
