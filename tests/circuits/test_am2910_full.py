"""Exhaustive instruction-level tests for the Am2910 sequencer model."""

import pytest

from repro.circuits.synth.am2910 import (
    CJP, CJPP, CJS, CJV, CONT, CRTN, JMAP, JRP, JSRP, JZ, LDCT, LOOP,
    PUSH, RFCT, RPCT, TWB, am2910,
)
from repro.simulation.logic_sim import FrameSimulator

from ..helpers import drive, frame_bus


WIDTH = 6


@pytest.fixture()
def dut():
    circuit = am2910(width=WIDTH)
    sim = FrameSimulator(circuit, width=1)
    drive(sim, circuit, instr=JZ, d=0, cc=0)  # reset: Y=0, uPC<-1
    return circuit, sim


def y_of(circuit, out):
    return frame_bus(out, circuit.outputs[:WIDTH])


def step(circuit, sim, instr, d=0, cc=0):
    return y_of(circuit, drive(sim, circuit, instr=instr, d=d, cc=cc))


class TestJumps:
    def test_cjp_taken_and_not_taken(self, dut):
        circuit, sim = dut
        assert step(circuit, sim, CJP, d=30, cc=1) == 30
        assert step(circuit, sim, CONT) == 31
        assert step(circuit, sim, CJP, d=9, cc=0) == 32  # condition fails

    def test_cjv_is_a_conditional_jump(self, dut):
        circuit, sim = dut
        assert step(circuit, sim, CJV, d=21, cc=1) == 21
        assert step(circuit, sim, CJV, d=5, cc=0) == 22

    def test_jrp_selects_register_or_direct(self, dut):
        circuit, sim = dut
        step(circuit, sim, LDCT, d=40)            # R <- 40
        assert step(circuit, sim, JRP, d=50, cc=1) == 50   # cc: direct
        step(circuit, sim, LDCT, d=40)
        assert step(circuit, sim, JRP, d=50, cc=0) == 40   # !cc: register


class TestSubroutines:
    def test_jsrp_calls_via_register_or_direct(self, dut):
        circuit, sim = dut
        step(circuit, sim, LDCT, d=10)            # Y=uPC=1, R <- 10, uPC<-2
        y = step(circuit, sim, JSRP, d=20, cc=0)  # call R, push uPC=2
        assert y == 10
        assert step(circuit, sim, CRTN, cc=1) == 2  # return to pushed uPC

    def test_nested_calls_use_the_stack(self, dut):
        circuit, sim = dut
        step(circuit, sim, CONT)                  # Y=1
        assert step(circuit, sim, CJS, d=10, cc=1) == 10  # push 2
        assert step(circuit, sim, CJS, d=20, cc=1) == 20  # push 11
        assert step(circuit, sim, CRTN, cc=1) == 11
        assert step(circuit, sim, CRTN, cc=1) == 2

    def test_crtn_not_taken_continues(self, dut):
        circuit, sim = dut
        step(circuit, sim, CONT)
        step(circuit, sim, CJS, d=10, cc=1)
        assert step(circuit, sim, CRTN, cc=0) == 11  # stays in subroutine

    def test_push_saves_upc_and_loads_counter(self, dut):
        circuit, sim = dut
        step(circuit, sim, CONT)                    # Y=1, uPC<-2
        assert step(circuit, sim, PUSH, d=7, cc=1) == 2   # Y=uPC, push, R<-7
        step(circuit, sim, LOOP, cc=0)              # loop back to top=2
        # R was loaded: RPCT now decrements from 7
        assert step(circuit, sim, RPCT, d=2, cc=0) == 2


class TestLoops:
    def test_loop_until_condition(self, dut):
        circuit, sim = dut
        step(circuit, sim, CONT)                    # Y=1, uPC<-2
        step(circuit, sim, PUSH, d=0, cc=0)         # push 2 (loop top)
        assert step(circuit, sim, LOOP, cc=0) == 2  # repeat from stack
        assert step(circuit, sim, LOOP, cc=0) == 2
        y = step(circuit, sim, LOOP, cc=1)          # exit: continue + pop
        assert y == 3

    def test_rfct_repeats_from_stack_while_counter(self, dut):
        circuit, sim = dut
        step(circuit, sim, LDCT, d=2)               # R <- 2
        step(circuit, sim, CONT)                    # Y=2, uPC<-3
        step(circuit, sim, PUSH, d=0, cc=0)         # push 3
        assert step(circuit, sim, RFCT, cc=0) == 3  # R=2: loop, R<-1
        assert step(circuit, sim, RFCT, cc=0) == 3  # R=1: loop, R<-0
        y = step(circuit, sim, RFCT, cc=0)          # R=0: fall through, pop
        assert y == 4

    def test_twb_three_way_branch(self, dut):
        circuit, sim = dut
        # cc true: continue (pop)
        step(circuit, sim, LDCT, d=3)
        step(circuit, sim, CONT)
        step(circuit, sim, PUSH, d=0, cc=0)
        assert step(circuit, sim, TWB, d=60, cc=1) == 4  # uPC path
        # cc false with R != 0: loop from stack
        step(circuit, sim, JZ)
        step(circuit, sim, LDCT, d=1)
        step(circuit, sim, CONT)                    # Y=2, uPC<-3
        step(circuit, sim, PUSH, d=0, cc=0)         # push 3
        assert step(circuit, sim, TWB, d=60, cc=0) == 3   # stack, R<-0
        # cc false with R == 0: jump direct (pop)
        assert step(circuit, sim, TWB, d=60, cc=0) == 60


class TestStatusOutputs:
    def test_map_and_vect_strobes(self, dut):
        circuit, sim = dut
        pl, mp, vect = circuit.outputs[WIDTH:WIDTH + 3]
        out = drive(sim, circuit, instr=JMAP, d=0, cc=0)
        assert out[mp] == 1 and out[vect] == 0 and out[pl] == 0
        out = drive(sim, circuit, instr=CJV, d=0, cc=0)
        assert out[vect] == 1 and out[mp] == 0
        out = drive(sim, circuit, instr=CONT, d=0, cc=0)
        assert out[pl] == 1

    def test_full_flag_after_five_pushes(self, dut):
        circuit, sim = dut
        full = circuit.outputs[-1]
        for i in range(5):
            out = drive(sim, circuit, instr=PUSH, d=0, cc=0)
        # flag registers depth at the *next* frame's read
        out = drive(sim, circuit, instr=CONT, d=0, cc=0)
        assert out[full] == 1

    def test_jz_clears_the_stack_depth(self, dut):
        circuit, sim = dut
        full = circuit.outputs[-1]
        for _ in range(5):
            drive(sim, circuit, instr=PUSH, d=0, cc=0)
        drive(sim, circuit, instr=JZ, d=0, cc=0)
        out = drive(sim, circuit, instr=CONT, d=0, cc=0)
        assert out[full] == 0
