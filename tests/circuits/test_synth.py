"""Behavioural tests for the synthesised Table III circuits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.synth import am2910, div16, mult16, pcont2
from repro.circuits.synth.am2910 import (
    CJS, CONT, CRTN, JMAP, JZ, LDCT, PUSH, RPCT,
)
from repro.circuits.synth.pcont2 import CMD_LOAD, CMD_NOP, CMD_START, CMD_STOP
from repro.simulation.compiled import compile_circuit
from repro.simulation.logic_sim import FrameSimulator

from ..helpers import drive, frame_bus, read_bit, read_bus


def bus(circuit, prefix):
    """Little-endian net list for a named output bus."""
    nets = [n for n in circuit.nets if n.startswith(prefix)]
    return sorted(nets, key=lambda n: int("".join(ch for ch in n.rsplit("q", 1)[-1] if ch.isdigit())))


class TestDiv16:
    @pytest.fixture(scope="class")
    def circuit(self):
        return div16(width=8)  # smaller width keeps the test fast

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 200), st.integers(1, 40))
    def test_division(self, circuit, dividend, divisor):
        sim = FrameSimulator(circuit, width=1)
        drive(sim, circuit, start=1, dividend=dividend, divisor=divisor)
        for _ in range(dividend // divisor + 3):
            drive(sim, circuit, start=0, dividend=0, divisor=0)
        quo = read_bus(sim, bus(circuit, "quo_q"))
        rem = read_bus(sim, bus(circuit, "rem_q"))
        assert quo == dividend // divisor
        assert rem == dividend % divisor

    def test_divide_by_zero_flag(self, circuit):
        sim = FrameSimulator(circuit, width=1)
        drive(sim, circuit, start=1, dividend=10, divisor=0)
        out = drive(sim, circuit, start=0, dividend=0, divisor=0)
        assert out[circuit.outputs[-1]] == 1

    def test_interface(self):
        c = div16()
        assert len(c.inputs) == 33
        assert c.name == "div"


class TestMult16:
    @pytest.fixture(scope="class")
    def circuit(self):
        return mult16(width=8)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_twos_complement_product(self, circuit, x, y):
        width = 8
        sim = FrameSimulator(circuit, width=1)
        drive(sim, circuit, start=1,
              multiplicand=x & 0xFF, multiplier=y & 0xFF)
        for _ in range(width + 3):
            drive(sim, circuit, start=0, multiplicand=0, multiplier=0)
        hi = read_bus(sim, bus(circuit, "acc_q"))
        lo = read_bus(sim, bus(circuit, "q_q"))
        product = (hi << width) | lo
        if product & (1 << (2 * width - 1)):
            product -= 1 << (2 * width)
        assert product == x * y

    def test_interface(self):
        c = mult16()
        assert len(c.inputs) == 33
        assert c.name == "mult"


class TestAm2910:
    @pytest.fixture(scope="class")
    def circuit(self):
        return am2910(width=6)  # narrower address bus for speed

    @staticmethod
    def _y(circuit, outputs):
        return frame_bus(outputs, circuit.outputs[:6])

    def _fresh(self, circuit):
        sim = FrameSimulator(circuit, width=1)
        # JZ resets Y to 0 and clears the stack; uPC becomes 1
        drive(sim, circuit, instr=JZ, d=0, cc=0)
        return sim

    def test_jz_forces_zero(self, circuit):
        sim = FrameSimulator(circuit, width=1)
        out = drive(sim, circuit, instr=JZ, d=0, cc=0)
        assert self._y(circuit, out) == 0

    def test_cont_increments(self, circuit):
        sim = self._fresh(circuit)
        for expect in (1, 2, 3):
            out = drive(sim, circuit, instr=CONT, d=0, cc=0)
            assert self._y(circuit, out) == expect

    def test_jmap_jumps(self, circuit):
        sim = self._fresh(circuit)
        out = drive(sim, circuit, instr=JMAP, d=17, cc=0)
        assert self._y(circuit, out) == 17
        out = drive(sim, circuit, instr=CONT, d=0, cc=0)
        assert self._y(circuit, out) == 18

    def test_call_and_return(self, circuit):
        sim = self._fresh(circuit)
        out = drive(sim, circuit, instr=CONT, d=0, cc=0)   # Y=1, uPC<-2
        out = drive(sim, circuit, instr=CJS, d=20, cc=1)   # call 20, push 2
        assert self._y(circuit, out) == 20
        out = drive(sim, circuit, instr=CRTN, d=0, cc=1)   # return to 2
        assert self._y(circuit, out) == 2

    def test_failed_conditional_call_continues(self, circuit):
        sim = self._fresh(circuit)
        drive(sim, circuit, instr=CONT, d=0, cc=0)         # Y=1, uPC<-2
        out = drive(sim, circuit, instr=CJS, d=20, cc=0)   # cc fails
        assert self._y(circuit, out) == 2

    def test_rpct_loops_until_counter_zero(self, circuit):
        sim = self._fresh(circuit)
        out = drive(sim, circuit, instr=LDCT, d=2, cc=0)   # R = 2, Y=uPC=1
        # RPCT jumps to D while R != 0 (decrementing), else continues
        out = drive(sim, circuit, instr=RPCT, d=33, cc=0)  # R 2->1
        assert self._y(circuit, out) == 33
        out = drive(sim, circuit, instr=RPCT, d=33, cc=0)  # R 1->0
        assert self._y(circuit, out) == 33
        out = drive(sim, circuit, instr=RPCT, d=33, cc=0)  # R == 0: continue
        assert self._y(circuit, out) == 34

    def test_interface(self):
        c = am2910()
        assert len(c.inputs) == 17   # 4 instr + 12 d + cc
        assert c.stats()["flops"] == 87  # uPC 12 + R 12 + stack 60 + depth 3


class TestPcont2:
    @pytest.fixture(scope="class")
    def circuit(self):
        return pcont2(channels=4, counter_width=4)

    def test_load_start_countdown_done(self, circuit):
        sim = FrameSimulator(circuit, width=1)
        drive(sim, circuit, cmd=CMD_LOAD, sel=1, broadcast=0, data=3)
        drive(sim, circuit, cmd=CMD_START, sel=1, broadcast=0, data=0)
        # channel 1 now counts 3 -> 2 -> 1 -> 0 and raises done
        out = {}
        for _ in range(5):
            out = drive(sim, circuit, cmd=CMD_NOP, sel=0, broadcast=0, data=0)
        done = circuit.outputs[4:8]
        active = circuit.outputs[0:4]
        assert out[done[1]] == 1
        assert out[active[1]] == 0

    def test_stop_freezes(self, circuit):
        sim = FrameSimulator(circuit, width=1)
        drive(sim, circuit, cmd=CMD_LOAD, sel=2, broadcast=0, data=8)
        drive(sim, circuit, cmd=CMD_START, sel=2, broadcast=0, data=0)
        drive(sim, circuit, cmd=CMD_STOP, sel=2, broadcast=0, data=0)
        done = circuit.outputs[4:8]
        out = {}
        for _ in range(12):
            out = drive(sim, circuit, cmd=CMD_NOP, sel=0, broadcast=0, data=0)
        assert out[done[2]] == 0  # frozen, never reached zero

    def test_broadcast_hits_all_channels(self, circuit):
        sim = FrameSimulator(circuit, width=1)
        drive(sim, circuit, cmd=CMD_LOAD, sel=0, broadcast=1, data=1)
        drive(sim, circuit, cmd=CMD_START, sel=0, broadcast=1, data=0)
        out = {}
        for _ in range(4):
            out = drive(sim, circuit, cmd=CMD_NOP, sel=0, broadcast=0, data=0)
        assert out[circuit.outputs[-1]] == 1  # all_done

    def test_interface(self):
        c = pcont2()
        assert len(c.inputs) == 14
        assert c.stats()["flops"] == 80
