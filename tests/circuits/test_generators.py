"""Tests for the synthetic benchmark generators and the ISCAS89 registry."""

import pytest

from repro.circuit.validate import validate
from repro.circuits.generators import counter, shift_register, synthetic_sequential
from repro.circuits.iscas89 import ISCAS89_SPECS, QUICK_SET, available, iscas89
from repro.circuits.s27 import s27
from repro.simulation.encoding import pack_const, unpack
from repro.simulation.logic_sim import FrameSimulator

from ..helpers import drive


class TestCounter:
    def test_counts_with_clear(self):
        c = counter(4)
        sim = FrameSimulator(c, width=1)
        drive(sim, c, en=0, clr=1)  # clear to 0
        values = []
        for _ in range(5):
            out = drive(sim, c, en=1, clr=0)
            values.append(sum(out[f"q{i}"] << i for i in range(4)))
        assert values == [0, 1, 2, 3, 4]

    def test_wraps(self):
        c = counter(2)
        sim = FrameSimulator(c, width=1)
        drive(sim, c, en=0, clr=1)
        seen = []
        for _ in range(6):
            out = drive(sim, c, en=1, clr=0)
            seen.append(sum(out[f"q{i}"] << i for i in range(2)))
        assert seen == [0, 1, 2, 3, 0, 1]

    def test_enable_freezes(self):
        c = counter(3)
        sim = FrameSimulator(c, width=1)
        drive(sim, c, en=0, clr=1)
        drive(sim, c, en=1, clr=0)
        out = drive(sim, c, en=0, clr=0)
        out = drive(sim, c, en=0, clr=0)
        assert sum(out[f"q{i}"] << i for i in range(3)) == 1


class TestShiftRegister:
    def test_delay_line(self):
        c = shift_register(3)
        sim = FrameSimulator(c, width=1)
        bits = [1, 0, 1, 1, 0, 0, 1]
        seen = [drive(sim, c, sin=b)[c.outputs[0]] for b in bits]
        # the combinational d0 buffer adds no delay: 3 DFF stages = 3 frames
        for i, b in enumerate(bits):
            j = i + 3
            if j < len(bits):
                assert seen[j] == b

    def test_lfsr_has_feedback(self):
        c = shift_register(5, taps=(1, 4))
        assert any(g.gtype.value == "XOR" for g in c.gates.values())


class TestSyntheticSequential:
    @pytest.mark.parametrize("style", ["control", "data", "mixed"])
    def test_interface_counts_exact(self, style):
        c = synthetic_sequential("t", 5, 4, 8, 60, 4, seed=1, style=style)
        assert len(c.inputs) == 5
        assert len(c.outputs) == 4
        assert len(c.flops) == 8
        assert validate(c) == []

    def test_gate_budget_approximate(self):
        c = synthetic_sequential("t", 6, 4, 10, 200, 6, seed=2)
        assert 100 <= c.num_gates <= 400

    def test_deterministic_in_seed(self):
        a = synthetic_sequential("t", 4, 3, 6, 50, 3, seed=7)
        b = synthetic_sequential("t", 4, 3, 6, 50, 3, seed=7)
        assert a.gates == b.gates and a.inputs == b.inputs

    def test_different_seeds_differ(self):
        a = synthetic_sequential("t", 4, 3, 6, 50, 3, seed=1)
        b = synthetic_sequential("t", 4, 3, 6, 50, 3, seed=2)
        assert a.gates != b.gates

    def test_rejects_bad_style(self):
        with pytest.raises(ValueError):
            synthetic_sequential("t", 2, 2, 2, 10, 2, style="quantum")

    def test_no_flops_allowed(self):
        c = synthetic_sequential("comb", 4, 2, 0, 30, 0, seed=3)
        assert c.flops == []
        assert validate(c) == []


class TestIscas89Registry:
    def test_names_cover_table2(self):
        names = available()
        for expected in ("s27", "s298", "s382", "s5378", "s35932"):
            assert expected in names

    def test_s27_is_the_real_netlist(self):
        assert iscas89("s27").gates == s27().gates

    def test_standin_matches_spec_interface(self):
        for name in QUICK_SET:
            spec = ISCAS89_SPECS[name]
            c = iscas89(name)
            assert len(c.inputs) == spec.n_pi, name
            assert len(c.outputs) == spec.n_po, name
            assert len(c.flops) == spec.n_ff, name
            assert validate(c) == []

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            iscas89("s9999")

    def test_specs_carry_paper_metadata(self):
        spec = ISCAS89_SPECS["s298"]
        assert spec.seq_depth == 8
        assert spec.paper_total_faults == 308
        assert ISCAS89_SPECS["s5378"].paper_seq_scale == (0.25, 0.5)
