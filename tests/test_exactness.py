"""Exact-oracle tests: engine claims versus exhaustive product-machine BFS.

For tiny circuits the question "is this fault detectable?" is decidable
exactly under three-valued semantics: breadth-first search over the
reachable (good state, faulty state) product space from the all-unknown
power-up state, applying every input vector at every step, looking for a
frame where some primary output is known in both machines and differs.

The oracle then checks the deterministic engine in both directions:

* **soundness** — a fault the engine proves UNTESTABLE must be
  undetectable by *every* input sequence (any length);
* **completeness (bounded)** — a fault the oracle detects within the
  engine's frame budget must not be proven untestable, and with generous
  limits should be DETECTED.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.hitec import SequentialTestGenerator
from repro.atpg.hitec import TestGenStatus as GenStatus
from repro.atpg.justify import justify_state
from repro.atpg.podem import Limits
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X, pack_const, unpack
from repro.simulation.fault_sim import injection_for
from repro.simulation.logic_sim import FrameSimulator

from .conftest import random_circuits


def exact_detection_depth(circuit, fault, max_depth: int = 12):
    """BFS the good x faulty product machine; return the shortest number
    of frames to a definite detection, or None if unreachable within
    ``max_depth`` *and* the frontier closed (proven undetectable)."""
    cc = compile_circuit(circuit)
    injections = [injection_for(cc, fault, 1)]
    n_ff = len(cc.ff_out)
    n_pi = len(cc.pi)
    all_vectors = list(itertools.product([0, 1], repeat=n_pi))

    good_sim = FrameSimulator(cc, width=1)
    bad_sim = FrameSimulator(cc, width=1, injections=injections)

    def step(state_pair, vector):
        gs, fs = state_pair
        good_sim.set_state([pack_const(v, 1) for v in gs])
        good_sim._dirty = True
        bad_sim.set_state([pack_const(v, 1) for v in fs])
        bad_sim._dirty = True
        packed = [pack_const(v, 1) for v in vector]
        g_po = good_sim.step(packed)
        b_po = bad_sim.step(packed)
        detect = any(
            unpack(g, 1)[0] != X
            and unpack(b, 1)[0] != X
            and unpack(g, 1)[0] != unpack(b, 1)[0]
            for g, b in zip(g_po, b_po)
        )
        next_pair = (
            tuple(unpack(v, 1)[0] for v in good_sim.get_state()),
            tuple(unpack(v, 1)[0] for v in bad_sim.get_state()),
        )
        return detect, next_pair

    start = (tuple([X] * n_ff), tuple([X] * n_ff))
    seen = {start}
    frontier = [start]
    for depth in range(1, max_depth + 1):
        next_frontier = []
        for pair in frontier:
            for vector in all_vectors:
                detect, nxt = step(pair, vector)
                if detect:
                    return depth
                if nxt not in seen:
                    seen.add(nxt)
                    next_frontier.append(nxt)
        if not next_frontier:
            return None  # state space closed: provably undetectable
        frontier = next_frontier
    return -1  # undecided within max_depth (should not happen on tiny FSMs)


def run_engine(circuit, fault):
    cc = compile_circuit(circuit)
    gen = SequentialTestGenerator(cc, max_frames=8, max_solutions=16)

    def justifier(required):
        return justify_state(cc, required, 10, Limits(20_000))

    return gen.generate(fault, justifier, Limits(20_000))


class TestOracleAgreement:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_engine_vs_oracle(self, data):
        circuit = data.draw(random_circuits(max_pi=2, max_ff=2, max_gates=6))
        faults = collapse_faults(circuit)[:6]
        for fault in faults:
            truth = exact_detection_depth(circuit, fault)
            outcome = run_engine(circuit, fault)
            if outcome.status is GenStatus.UNTESTABLE:
                assert truth is None, (
                    f"{fault} proven untestable but oracle detects it "
                    f"(depth {truth}) in {circuit.gates}"
                )
            if outcome.status is GenStatus.DETECTED:
                assert truth is not None and truth != -1, (
                    f"{fault} detected by the engine but the oracle says "
                    f"undetectable in {circuit.gates}"
                )

    def test_oracle_on_known_circuit(self):
        """Every collapsed s27 fault is detectable (the oracle agrees)."""
        circuit = s27()
        # the product space of s27 (3 FFs) is small enough to decide a few
        for fault in collapse_faults(circuit)[:6]:
            assert exact_detection_depth(circuit, fault, max_depth=10) not in (
                None,
            )

    def test_window_pressure_survives_solution_enumeration(self):
        """Regression: a branch fault whose every small-window solution has
        an unjustifiable state requirement, but whose effect can also be
        latched past the window edge.  The search must report WINDOW (not
        EXHAUSTED) after enumerating those solutions, so the engine grows
        the window instead of unsoundly proving the fault untestable —
        here the 4-frame detection needs no state at all."""
        c = Circuit("window_pressure")
        c.add_input("pi0")
        c.add_gate("g0", GateType.XNOR, ["ff1", "ff1"])
        c.add_gate("g3", GateType.OR, ["pi0", "g0"])
        c.add_gate("g5", GateType.OR, ["ff0", "g0"])
        c.add_gate("ff0", GateType.DFF, ["ff1"])
        c.add_gate("ff1", GateType.DFF, ["g3"])
        c.add_output("g5")
        fault = Fault("ff1", 0, gate="g0", pin=0)
        assert exact_detection_depth(c, fault) == 4
        outcome = run_engine(c, fault)
        assert outcome.status is GenStatus.DETECTED
