"""Tests for structural Verilog interchange."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.verilog import (
    VerilogError,
    load_verilog,
    parse_verilog,
    save_verilog,
    write_verilog,
)
from repro.circuits import am2910, s27

from ..conftest import random_circuits


class TestWrite:
    def test_s27_contains_expected_constructs(self):
        text = write_verilog(s27())
        assert text.startswith("module s27 (")
        assert "input G0, G1, G2, G3;" in text
        assert "output G17;" in text
        assert "dff" in text and ".q(G5)" in text
        assert "endmodule" in text

    def test_escaped_identifiers(self):
        c = Circuit("weird")
        c.add_input("1bad")
        c.add_gate("and", GateType.NOT, ["1bad"])  # keyword as a net name
        c.add_output("and")
        text = write_verilog(c)
        assert "\\1bad " in text
        assert "\\and " in text

    def test_constants(self):
        c = Circuit("consts")
        c.add_input("a")
        c.add_gate("one", GateType.CONST1, [])
        c.add_gate("y", GateType.AND, ["a", "one"])
        c.add_output("y")
        assert "supply1" in write_verilog(c)


class TestRoundtrip:
    def test_s27(self):
        again = parse_verilog(write_verilog(s27()))
        original = s27()
        assert again.inputs == original.inputs
        assert again.outputs == original.outputs
        assert again.gates == original.gates
        assert again.name == "s27"

    def test_am2910(self):
        original = am2910(width=4)
        again = parse_verilog(write_verilog(original))
        assert again.gates == original.gates

    def test_escaped_roundtrip(self):
        c = Circuit("weird")
        c.add_input("1bad")
        c.add_gate("and", GateType.NOT, ["1bad"])
        c.add_output("and")
        again = parse_verilog(write_verilog(c))
        assert again.gates == c.gates

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_circuits(self, data):
        circuit = data.draw(random_circuits())
        again = parse_verilog(write_verilog(circuit))
        assert again.inputs == circuit.inputs
        assert again.outputs == circuit.outputs
        assert again.gates == circuit.gates

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "c.v")
        save_verilog(s27(), path)
        assert load_verilog(path).gates == s27().gates


class TestParseErrors:
    def test_comments_ignored(self):
        text = """// header
        module m (a, y); /* block
        comment */ input a; output y;
        not u1 (y, a);
        endmodule"""
        c = parse_verilog(text)
        assert c.gates["y"].gtype is GateType.NOT

    def test_missing_endmodule(self):
        with pytest.raises(VerilogError):
            parse_verilog("module m (a); input a;")

    def test_unsupported_construct(self):
        with pytest.raises(VerilogError):
            parse_verilog("module m (); assign y = a; endmodule")

    def test_dff_needs_named_ports(self):
        with pytest.raises(VerilogError):
            parse_verilog(
                "module m (a, y); input a; output y;"
                "dff f (.q(y), .clk(a)); endmodule"
            )

    def test_undeclared_output(self):
        with pytest.raises(VerilogError):
            parse_verilog("module m (a); input a; output ghost; endmodule")
