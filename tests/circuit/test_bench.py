"""Tests for the ISCAS89 .bench parser and writer."""

import pytest

from repro.circuit.bench import (
    BenchParseError,
    parse_bench,
    save_bench,
    load_bench,
    write_bench,
)
from repro.circuit.gates import GateType
from repro.circuits.s27 import S27_BENCH, s27


class TestParse:
    def test_s27_structure(self):
        c = parse_bench(S27_BENCH, "s27")
        assert c.inputs == ["G0", "G1", "G2", "G3"]
        assert c.outputs == ["G17"]
        assert c.flops == ["G5", "G6", "G7"]
        assert c.num_gates == 10

    def test_comments_and_blanks_ignored(self):
        text = """
        # a comment
        INPUT(a)   # trailing comment

        OUTPUT(y)
        y = NOT(a)
        """
        c = parse_bench(text)
        assert c.inputs == ["a"] and c.outputs == ["y"]

    def test_case_insensitive_keywords(self):
        text = "input(a)\noutput(y)\ny = not(a)\n"
        c = parse_bench(text)
        assert c.gates["y"].gtype is GateType.NOT

    def test_buff_alias(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
        assert c.gates["y"].gtype is GateType.BUF

    def test_definitions_in_any_order(self):
        text = "OUTPUT(y)\ny = AND(a, b)\nINPUT(a)\nINPUT(b)\n"
        c = parse_bench(text)
        assert c.gates["y"].inputs == ("a", "b")

    def test_unknown_gate_type(self):
        with pytest.raises(BenchParseError, match="unknown gate"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_undeclared_output(self):
        with pytest.raises(BenchParseError, match="undeclared"):
            parse_bench("INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n")

    def test_undeclared_gate_input(self):
        with pytest.raises(BenchParseError, match="undeclared"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")

    def test_duplicate_driver(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n")

    def test_garbage_line(self):
        with pytest.raises(BenchParseError, match="unrecognised"):
            parse_bench("INPUT(a)\nwhat is this\n")

    def test_error_carries_line_number(self):
        with pytest.raises(BenchParseError) as exc:
            parse_bench("INPUT(a)\n\nzzz\n")
        assert exc.value.line_no == 3


class TestWrite:
    def test_roundtrip_s27(self):
        original = s27()
        text = write_bench(original)
        again = parse_bench(text, "s27")
        assert again.inputs == original.inputs
        assert again.outputs == original.outputs
        assert again.gates == original.gates

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "s27.bench")
        save_bench(s27(), path)
        loaded = load_bench(path)
        assert loaded.name == "s27"
        assert loaded.gates == s27().gates

    def test_load_uses_file_stem_as_name(self, tmp_path):
        path = str(tmp_path / "mychip.bench")
        save_bench(s27(), path)
        assert load_bench(path).name == "mychip"
