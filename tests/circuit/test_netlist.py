"""Unit tests for the Circuit netlist model."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError, Gate, connected_nets


def build_simple() -> Circuit:
    c = Circuit("simple")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("n1", GateType.AND, ["a", "b"])
    c.add_gate("n2", GateType.NOT, ["n1"])
    c.add_output("n2")
    return c


class TestConstruction:
    def test_duplicate_input_rejected(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_input("a")

    def test_duplicate_driver_rejected(self):
        c = build_simple()
        with pytest.raises(CircuitError):
            c.add_gate("n1", GateType.OR, ["a"])

    def test_gate_driving_an_input_rejected(self):
        c = build_simple()
        with pytest.raises(CircuitError):
            c.add_gate("a", GateType.NOT, ["b"])

    def test_bad_arity_rejected(self):
        with pytest.raises(CircuitError):
            Gate("x", GateType.NOT, ("a", "b"))
        with pytest.raises(CircuitError):
            Gate("x", GateType.CONST0, ("a",))

    def test_forward_references_allowed(self):
        c = Circuit("fwd")
        c.add_input("a")
        c.add_gate("y", GateType.AND, ["a", "later"])
        c.add_gate("later", GateType.NOT, ["a"])
        c.add_output("y")
        assert set(c.topo_order) == {"y", "later"}


class TestQueries:
    def test_nets_order(self):
        c = build_simple()
        assert c.nets == ["a", "b", "n1", "n2"]

    def test_flops_and_gate_count(self):
        c = build_simple()
        c.add_gate("q", GateType.DFF, ["n1"])
        assert c.flops == ["q"]
        assert c.num_gates == 2  # DFF not counted as a combinational gate

    def test_driver_lookup(self):
        c = build_simple()
        assert c.driver("a") is None
        assert c.driver("n1").gtype is GateType.AND

    def test_fanout(self):
        c = build_simple()
        assert c.fanout["n1"] == [("n2", 0)]
        assert c.fanout["a"] == [("n1", 0)]

    def test_fanout_undeclared_net_raises(self):
        c = Circuit("bad")
        c.add_input("a")
        c.add_gate("y", GateType.NOT, ["ghost"])
        with pytest.raises(CircuitError):
            c.fanout


class TestLevels:
    def test_levels_simple(self):
        c = build_simple()
        assert c.levels["a"] == 0
        assert c.levels["n1"] == 1
        assert c.levels["n2"] == 2
        assert c.max_level == 2

    def test_dff_output_is_level_zero(self):
        c = build_simple()
        c.add_gate("q", GateType.DFF, ["n2"])
        c.add_gate("n3", GateType.NOT, ["q"])
        c.add_output("n3")
        assert c.levels["q"] == 0
        assert c.levels["n3"] == 1

    def test_combinational_cycle_detected(self):
        c = Circuit("cyc")
        c.add_input("a")
        c.add_gate("x", GateType.AND, ["a", "y"])
        c.add_gate("y", GateType.NOT, ["x"])
        c.add_output("y")
        with pytest.raises(CircuitError):
            c.topo_order

    def test_dff_breaks_cycles(self):
        c = Circuit("seq_cycle")
        c.add_input("a")
        c.add_gate("x", GateType.AND, ["a", "q"])
        c.add_gate("q", GateType.DFF, ["x"])
        c.add_output("x")
        assert c.topo_order == ["x"]


class TestSequentialDepth:
    def test_no_flops(self):
        c = build_simple()
        assert c.sequential_depth == 0

    def test_chain(self):
        c = Circuit("chain")
        c.add_input("a")
        prev = "a"
        for i in range(5):
            c.add_gate(f"q{i}", GateType.DFF, [prev])
            prev = f"q{i}"
        c.add_gate("y", GateType.BUF, [prev])
        c.add_output("y")
        assert c.sequential_depth == 5

    def test_self_loop_counts_once(self):
        c = Circuit("loop")
        c.add_input("a")
        c.add_gate("d", GateType.XOR, ["a", "q"])
        c.add_gate("q", GateType.DFF, ["d"])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        assert c.sequential_depth == 1

    def test_deep_chain_no_recursion_error(self):
        c = Circuit("deep")
        c.add_input("a")
        prev = "a"
        for i in range(3000):
            c.add_gate(f"q{i}", GateType.DFF, [prev])
            prev = f"q{i}"
        c.add_output(prev)
        assert c.sequential_depth == 3000


class TestMisc:
    def test_stats(self, s27_circuit):
        stats = s27_circuit.stats()
        assert stats == {
            "inputs": 4,
            "outputs": 1,
            "flops": 3,
            "gates": 10,
            "levels": 6,
            "sequential_depth": 3,
        }

    def test_copy_independent(self):
        c = build_simple()
        c2 = c.copy("copy")
        c2.add_gate("extra", GateType.NOT, ["a"])
        c2.add_output("extra")
        assert "extra" not in c.gates
        assert c2.name == "copy"

    def test_connected_nets(self):
        c = build_simple()
        c.add_gate("island", GateType.NOT, ["b"])
        cone = connected_nets(c, ["n2"])
        assert cone == {"n2", "n1", "a", "b"}
        assert "island" not in cone
