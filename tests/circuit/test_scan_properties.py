"""Property tests for scan insertion on random circuits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.scan import SCAN_ENABLE, SCAN_IN, insert_scan
from repro.circuit.validate import validate
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import pack_const, unpack
from repro.simulation.logic_sim import FrameSimulator

from ..conftest import random_circuits


class TestScanProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_functional_mode_equivalence(self, data):
        """scan_enable=0 makes the scanned circuit behave identically."""
        circuit = data.draw(random_circuits(max_pi=3, max_ff=3, max_gates=8))
        if not circuit.flops:
            return
        scanned, chain = insert_scan(circuit)
        new_problems = [p for p in validate(scanned) if "dangling" not in p]
        assert new_problems == []
        sim_o = FrameSimulator(circuit, width=1)
        sim_s = FrameSimulator(scanned, width=1)
        for _ in range(data.draw(st.integers(1, 6))):
            vec = {pi: data.draw(st.integers(0, 1)) for pi in circuit.inputs}
            out_o = sim_o.step({k: pack_const(v, 1) for k, v in vec.items()})
            svec = dict(vec)
            svec[SCAN_ENABLE] = 0
            svec[SCAN_IN] = data.draw(st.integers(0, 1))
            out_s = sim_s.step({k: pack_const(v, 1) for k, v in svec.items()})
            assert out_o == out_s[: len(out_o)]

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_shift_mode_is_a_pure_delay_line(self, data):
        """scan_enable=1 turns the flip-flops into a shift register."""
        circuit = data.draw(random_circuits(max_pi=2, max_ff=3, max_gates=6))
        if not circuit.flops:
            return
        scanned, chain = insert_scan(circuit)
        sim = FrameSimulator(scanned, width=1)
        bits = [data.draw(st.integers(0, 1)) for _ in range(chain.length + 3)]
        seen = []
        for bit in bits:
            vec = {pi: 0 for pi in circuit.inputs}
            vec[SCAN_ENABLE] = 1
            vec[SCAN_IN] = bit
            out = sim.step({k: pack_const(v, 1) for k, v in vec.items()})
            seen.append(unpack(out[-1], 1)[0])  # scan_out is the last PO
        # after the pipeline fills, scan_out = scan_in delayed by the chain
        for i, bit in enumerate(bits):
            j = i + chain.length
            if j < len(bits):
                assert seen[j] == bit

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_gate_overhead_is_three_per_flop(self, data):
        circuit = data.draw(random_circuits(max_pi=2, max_ff=3, max_gates=6))
        if not circuit.flops:
            return
        scanned, chain = insert_scan(circuit)
        overhead = scanned.num_gates - circuit.num_gates
        assert overhead == 3 * chain.length + 2  # muxes + inverter + buffer
