"""Unit tests for gate primitives and scalar evaluation."""

import itertools

import pytest

from repro.circuit.gates import (
    CONTROLLING_VALUE,
    GateType,
    INVERSION,
    eval_gate,
    valid_arity,
)


class TestArity:
    def test_unary_gates_take_exactly_one_input(self):
        for gtype in (GateType.NOT, GateType.BUF, GateType.DFF):
            assert valid_arity(gtype, 1)
            assert not valid_arity(gtype, 0)
            assert not valid_arity(gtype, 2)

    def test_constants_take_no_inputs(self):
        for gtype in (GateType.CONST0, GateType.CONST1):
            assert valid_arity(gtype, 0)
            assert not valid_arity(gtype, 1)

    def test_nary_gates_take_one_or_more(self):
        for gtype in (GateType.AND, GateType.OR, GateType.XOR, GateType.NOR):
            assert not valid_arity(gtype, 0)
            assert valid_arity(gtype, 1)
            assert valid_arity(gtype, 5)


class TestEvalGate:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_and_truth_table(self, n):
        for bits in itertools.product([0, 1], repeat=n):
            assert eval_gate(GateType.AND, list(bits)) == int(all(bits))
            assert eval_gate(GateType.NAND, list(bits)) == int(not all(bits))
            assert eval_gate(GateType.OR, list(bits)) == int(any(bits))
            assert eval_gate(GateType.NOR, list(bits)) == int(not any(bits))
            assert eval_gate(GateType.XOR, list(bits)) == sum(bits) % 2
            assert eval_gate(GateType.XNOR, list(bits)) == 1 - sum(bits) % 2

    def test_unary(self):
        assert eval_gate(GateType.NOT, [0]) == 1
        assert eval_gate(GateType.NOT, [1]) == 0
        assert eval_gate(GateType.BUF, [0]) == 0
        assert eval_gate(GateType.BUF, [1]) == 1

    def test_constants(self):
        assert eval_gate(GateType.CONST0, []) == 0
        assert eval_gate(GateType.CONST1, []) == 1

    def test_dff_has_no_combinational_function(self):
        with pytest.raises(ValueError):
            eval_gate(GateType.DFF, [0])

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            eval_gate(GateType.NOT, [0, 1])


class TestMetadata:
    def test_controlling_values(self):
        assert CONTROLLING_VALUE[GateType.AND] == 0
        assert CONTROLLING_VALUE[GateType.NAND] == 0
        assert CONTROLLING_VALUE[GateType.OR] == 1
        assert CONTROLLING_VALUE[GateType.NOR] == 1
        assert CONTROLLING_VALUE[GateType.XOR] is None

    def test_controlling_value_dominates(self):
        """A single controlling input forces the output regardless of others."""
        for gtype, ctrl in CONTROLLING_VALUE.items():
            if ctrl is None or gtype is GateType.DFF:
                continue
            forced = eval_gate(gtype, [ctrl, 0]) if gtype else None
            assert eval_gate(gtype, [ctrl, 0]) == eval_gate(gtype, [ctrl, 1])

    def test_inversion_parity(self):
        assert INVERSION[GateType.AND] == 0
        assert INVERSION[GateType.NAND] == 1
        assert INVERSION[GateType.NOT] == 1
        assert INVERSION[GateType.BUF] == 0

    def test_inversion_consistent_with_eval(self):
        pairs = [
            (GateType.AND, GateType.NAND),
            (GateType.OR, GateType.NOR),
            (GateType.XOR, GateType.XNOR),
        ]
        for plain, inverted in pairs:
            for bits in itertools.product([0, 1], repeat=2):
                assert eval_gate(plain, list(bits)) == 1 - eval_gate(
                    inverted, list(bits)
                )

    def test_sequential_flag(self):
        assert GateType.DFF.is_sequential
        assert not GateType.AND.is_sequential
        assert GateType.CONST0.is_constant
        assert not GateType.NOT.is_constant
