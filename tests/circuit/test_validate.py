"""Tests for structural validation and the dead-logic sweep."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.transform import live_nets, sweep
from repro.circuit.validate import check, validate
from repro.circuits import s27


def clean() -> Circuit:
    c = Circuit("clean")
    c.add_input("a")
    c.add_gate("y", GateType.NOT, ["a"])
    c.add_output("y")
    return c


class TestValidate:
    def test_clean_circuit_has_no_problems(self):
        assert validate(clean()) == []
        assert validate(s27()) == []

    def test_undeclared_input_reported(self):
        c = clean()
        c.gates["y2"] = c.gates["y"]  # sneak in a gate reading a ghost net
        c.gates["y2"] = type(c.gates["y"])("y2", GateType.NOT, ("ghost",))
        c.add_output("y2")
        problems = validate(c)
        assert any("ghost" in p for p in problems)

    def test_undeclared_output_reported(self):
        c = clean()
        c.outputs.append("nothing")
        assert any("nothing" in p for p in validate(c))

    def test_dangling_net_reported(self):
        c = clean()
        c.add_gate("orphan", GateType.BUF, ["a"])
        assert any("orphan" in p for p in validate(c))

    def test_cycle_reported(self):
        c = Circuit("cyc")
        c.add_input("a")
        c.add_gate("x", GateType.AND, ["a", "y"])
        c.add_gate("y", GateType.NOT, ["x"])
        c.add_output("y")
        assert any("cycle" in p for p in validate(c))

    def test_check_raises_and_returns(self):
        assert check(clean()).name == "clean"
        c = clean()
        c.add_gate("orphan", GateType.BUF, ["a"])
        with pytest.raises(CircuitError):
            check(c)


class TestSweep:
    def test_sweep_removes_dead_gates(self):
        c = clean()
        c.add_gate("dead1", GateType.BUF, ["a"])
        c.add_gate("dead2", GateType.NOT, ["dead1"])
        swept = sweep(c)
        assert "dead1" not in swept.gates
        assert "dead2" not in swept.gates
        assert validate(swept) == []

    def test_sweep_keeps_live_flops(self):
        c = Circuit("seq")
        c.add_input("a")
        c.add_gate("q", GateType.DFF, ["d"])
        c.add_gate("d", GateType.XOR, ["a", "q"])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        swept = sweep(c)
        assert set(swept.gates) == {"q", "d", "y"}

    def test_sweep_removes_dead_flops(self):
        c = clean()
        c.add_gate("qdead", GateType.DFF, ["a"])
        swept = sweep(c)
        assert "qdead" not in swept.gates

    def test_sweep_preserves_interface(self):
        c = clean()
        c.add_input("unused_pi")
        swept = sweep(c)
        assert swept.inputs == ["a", "unused_pi"]
        assert swept.outputs == ["y"]

    def test_live_nets_of_s27_is_everything(self):
        c = s27()
        assert live_nets(c) == set(c.nets)
