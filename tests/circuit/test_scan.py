"""Tests for full-scan insertion."""

import pytest

from repro.circuit.scan import (
    SCAN_ENABLE,
    SCAN_IN,
    SCAN_OUT,
    insert_scan,
    scan_load_sequence,
    strip_scan,
)
from repro.circuit.validate import validate
from repro.circuits import s27, two_stage_pipeline
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X, pack_const, unpack
from repro.simulation.logic_sim import FrameSimulator


def step(sim, circuit, values):
    return sim.step({n: pack_const(v, 1) for n, v in values.items()})


class TestInsertScan:
    def test_structure(self):
        scanned, chain = insert_scan(s27())
        assert SCAN_ENABLE in scanned.inputs
        assert SCAN_IN in scanned.inputs
        assert SCAN_OUT in scanned.outputs
        assert chain.order == ("G5", "G6", "G7")
        assert validate(scanned) == []
        # three extra gates per flip-flop plus inverter and output buffer
        assert scanned.num_gates == s27().num_gates + 3 * 3 + 2

    def test_requires_flops(self):
        from repro.circuit.netlist import Circuit
        from repro.circuit.gates import GateType

        c = Circuit("comb")
        c.add_input("a")
        c.add_gate("y", GateType.NOT, ["a"])
        c.add_output("y")
        with pytest.raises(ValueError):
            insert_scan(c)

    def test_functional_mode_preserves_behaviour(self):
        """With scan_enable=0 the scanned circuit equals the original."""
        import random

        rng = random.Random(4)
        original = s27()
        scanned, chain = insert_scan(s27())
        sim_o = FrameSimulator(original, width=1)
        sim_s = FrameSimulator(scanned, width=1)
        for _ in range(30):
            vec = {pi: rng.getrandbits(1) for pi in original.inputs}
            out_o = step(sim_o, original, vec)
            out_s = step(sim_s, scanned, {**vec, SCAN_ENABLE: 0, SCAN_IN: 0})
            assert out_o == out_s[: len(out_o)]

    def test_shift_mode_moves_data_down_the_chain(self):
        scanned, chain = insert_scan(two_stage_pipeline())
        sim = FrameSimulator(scanned, width=1)
        bits = [1, 0, 1, 1]
        seen = []
        for bit in bits:
            out = step(sim, scanned, {"a": 0, SCAN_ENABLE: 1, SCAN_IN: bit})
            seen.append(unpack(out[-1], 1)[0])  # scan_out is the last PO
        # chain length 2: scan_out shows the bit shifted two cycles ago
        assert seen[2] == bits[0] and seen[3] == bits[1]

    def test_scan_load_reaches_target_state(self):
        scanned, chain = insert_scan(s27())
        target = {"G5": 1, "G6": 0, "G7": 1}
        vectors = scan_load_sequence(chain, target, n_pi=4)
        assert len(vectors) == 3
        sim = FrameSimulator(scanned, width=1)
        for vec in vectors:
            nets = list(scanned.inputs)
            sim.step({n: pack_const(v, 1) for n, v in zip(nets, vec)})
        state = dict(zip(scanned.flops, sim.get_state()))
        for ff, want in target.items():
            assert unpack(state[ff], 1)[0] == want

    def test_strip_scan_roundtrip(self):
        original = s27()
        scanned, chain = insert_scan(s27())
        stripped = strip_scan(scanned, chain)
        assert stripped.inputs == original.inputs
        assert stripped.outputs == original.outputs
        assert set(stripped.gates) == set(original.gates)
