"""End-to-end telemetry: a full s27 campaign yields a schema-valid report."""

import json

import pytest

from repro.circuits import s27
from repro.cli import main
from repro.hybrid.driver import gahitec
from repro.hybrid.passes import gahitec_schedule
from repro.telemetry import RunReport, TelemetryRecorder, validate_report


@pytest.fixture(scope="module")
def campaign():
    recorder = TelemetryRecorder(trace=True)
    driver = gahitec(s27(), seed=1, telemetry=recorder)
    result = driver.run(gahitec_schedule(x=4, time_scale=None))
    return driver, result, recorder


class TestS27Campaign:
    def test_report_is_schema_valid(self, campaign):
        _, result, _ = campaign
        assert result.report is not None
        assert validate_report(result.report.to_dict()) == []

    def test_report_round_trips(self, campaign):
        _, result, _ = campaign
        clone = RunReport.from_dict(json.loads(result.report.to_json()))
        assert clone == result.report

    def test_dispositions_sum_to_fault_list_size(self, campaign):
        _, result, _ = campaign
        report = result.report
        by_status = {}
        for record in report.faults:
            by_status[record.status] = by_status.get(record.status, 0) + 1
        # Every targetable fault ends in exactly one terminal disposition.
        targetable = (
            by_status.get("detected", 0)
            + by_status.get("untestable", 0)
            + by_status.get("aborted", 0)
        )
        assert targetable == report.total_faults
        assert len(report.faults) == report.total_faults + by_status.get(
            "prefiltered", 0
        )

    def test_totals_match_run_result(self, campaign):
        _, result, _ = campaign
        report = result.report
        assert report.detected == len(result.detected)
        assert report.untestable == len(result.untestable)
        assert report.vectors == len(result.test_set)
        assert report.fault_coverage == result.fault_coverage

    def test_per_pass_new_counts_sum_to_totals(self, campaign):
        _, result, _ = campaign
        report = result.report
        assert sum(p.detected_new for p in report.passes) == report.detected
        assert sum(p.untestable_new for p in report.passes) == report.untestable
        assert all(p.time_s >= 0.0 for p in report.passes)

    def test_wall_and_cpu_time_recorded(self, campaign):
        _, result, _ = campaign
        report = result.report
        assert report.wall_time_s > 0.0
        assert report.cpu_time_s > 0.0
        assert report.wall_time_s >= report.passes[-1].time_s

    def test_metrics_snapshot_captured(self, campaign):
        _, result, _ = campaign
        counters = result.report.metrics["counters"]
        assert counters["hybrid.pass.calls"] == len(result.report.passes)
        assert counters["hybrid.commits"] <= counters["hybrid.validations"]
        assert counters["sim.frames"] > 0
        assert counters["atpg.faults_targeted"] > 0

    def test_trace_events_nested_and_named(self, campaign):
        _, _, recorder = campaign
        names = {event["name"] for event in recorder.trace_events}
        assert "hybrid.pass" in names
        assert "hybrid.validate" in names
        assert recorder.depth == 0

    def test_detected_faults_have_resolving_pass(self, campaign):
        _, result, _ = campaign
        for record in result.report.faults:
            if record.status == "detected":
                assert record.pass_number >= 1
                assert record.targeted >= 1 or record.incidental

    def test_seed_and_backend_recorded(self, campaign):
        driver, result, _ = campaign
        report = result.report
        assert report.seed == 1
        assert report.backend == driver.backend
        assert report.generator == "GA-HITEC"
        assert report.circuit == "s27"


class TestDisabledTelemetry:
    def test_report_still_produced_without_recorder(self):
        result = gahitec(s27(), seed=1).run(
            gahitec_schedule(x=4, time_scale=None)
        )
        report = result.report
        assert validate_report(report.to_dict()) == []
        assert report.metrics == {}
        # GA generation attribution needs a live recorder.
        assert all(r.ga_generations == 0 for r in report.faults)

    def test_same_campaign_with_and_without_telemetry(self):
        plain = gahitec(s27(), seed=7).run(gahitec_schedule(x=4, time_scale=None))
        traced = gahitec(s27(), seed=7, telemetry=TelemetryRecorder()).run(
            gahitec_schedule(x=4, time_scale=None)
        )
        # Telemetry must never perturb the search itself.
        assert plain.test_set == traced.test_set
        assert plain.report.detected == traced.report.detected


class TestPrefilteredDisposition:
    def test_prefiltered_faults_enter_the_report(self):
        from repro.circuits import redundant_and

        driver = gahitec(redundant_and(), seed=0, telemetry=TelemetryRecorder())
        proven = driver.prefilter_untestable()
        result = driver.run(gahitec_schedule(x=4, time_scale=None))
        report = result.report
        prefiltered = [r for r in report.faults if r.status == "prefiltered"]
        assert len(prefiltered) == len(proven) > 0
        assert report.total_faults == len(report.faults) - len(prefiltered)
        assert validate_report(report.to_dict()) == []


class TestCliTelemetry:
    def test_run_hybrid_alias_writes_report_and_trace(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "run-hybrid",
                "s27",
                "--seq-len",
                "4",
                "--telemetry",
                str(report_path),
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        data = json.loads(report_path.read_text())
        assert validate_report(data) == []
        assert trace_path.read_text().strip()

    def test_report_subcommand_summarises_and_diffs(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        code = main(
            ["atpg", "s27", "--seq-len", "4", "--telemetry", str(path)]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        summary = capsys.readouterr().out
        assert "s27" in summary
        assert main(["report", str(path), str(path)]) == 0
        diff = capsys.readouterr().out
        assert "delta" in diff
