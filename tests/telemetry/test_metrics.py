"""Unit tests for repro.telemetry.metrics: recorders, spans, registries."""

import json

import pytest

from repro.telemetry import (
    NULL_RECORDER,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    TelemetryRecorder,
    make_recorder,
)
from repro.telemetry.metrics import _NULL_SPAN


class FakeClock:
    """Deterministic clock advancing a fixed step per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestNullRecorder:
    def test_disabled_flag(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, Recorder)
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_methods_are_noops(self):
        NULL_RECORDER.count("x")
        NULL_RECORDER.count("x", 5)
        NULL_RECORDER.observe("y", 1.5)
        NULL_RECORDER.event("z", detail=1)
        assert NULL_RECORDER.value("x") == 0

    def test_span_reuses_shared_singleton(self):
        # The no-op span must not allocate per call: every invocation
        # returns the same module-level context manager.
        first = NULL_RECORDER.span("phase")
        second = NULL_RECORDER.span("other", attr=1)
        assert first is second is _NULL_SPAN
        with first as inner:
            assert inner is first

    def test_nested_noop_spans(self):
        with NULL_RECORDER.span("a"):
            with NULL_RECORDER.span("b"):
                NULL_RECORDER.count("inner")
        assert NULL_RECORDER.value("inner") == 0


class TestHistogram:
    def test_streaming_summary(self):
        hist = Histogram()
        for value in (2.0, 4.0, 6.0):
            hist.record(value)
        assert hist.count == 3
        assert hist.total == 12.0
        assert hist.min == 2.0
        assert hist.max == 6.0
        assert hist.mean == 4.0

    def test_empty_to_dict_is_finite(self):
        data = Histogram().to_dict()
        assert data == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


class TestMetricsRegistry:
    def test_count_and_value(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 4)
        assert reg.value("a") == 5
        assert reg.value("missing") == 0

    def test_merge_folds_counters_and_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.count("shared", 2)
        b.count("shared", 3)
        b.count("only_b")
        a.observe("h", 1.0)
        b.observe("h", 5.0)
        a.merge(b)
        assert a.value("shared") == 5
        assert a.value("only_b") == 1
        hist = a.histograms["h"]
        assert hist.count == 2 and hist.min == 1.0 and hist.max == 5.0

    def test_to_dict_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.count("z")
        reg.count("a")
        reg.observe("m", 2.0)
        data = reg.to_dict()
        assert list(data["counters"]) == ["a", "z"]
        json.dumps(data)  # must not raise


class TestTelemetryRecorder:
    def test_counts_and_observations(self):
        rec = TelemetryRecorder()
        rec.count("c", 3)
        rec.observe("h", 0.5)
        assert rec.enabled is True
        assert rec.value("c") == 3
        assert rec.registry.histograms["h"].count == 1

    def test_span_emits_calls_counter_and_seconds_histogram(self):
        rec = TelemetryRecorder(clock=FakeClock(step=1.0))
        with rec.span("phase"):
            pass
        assert rec.value("phase.calls") == 1
        hist = rec.registry.histograms["phase.seconds"]
        assert hist.count == 1
        assert hist.total == pytest.approx(1.0)

    def test_nested_spans_track_depth_in_trace(self):
        rec = TelemetryRecorder(trace=True, clock=FakeClock(step=1.0))
        with rec.span("outer"):
            assert rec.depth == 1
            with rec.span("inner", fault="g1/0"):
                assert rec.depth == 2
        assert rec.depth == 0
        # inner closes first; depth recorded after the pop.
        inner, outer = rec.trace_events
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0
        assert inner["ph"] == outer["ph"] == "X"
        assert inner["args"] == {"fault": "g1/0"}
        assert "args" not in outer

    def test_trace_disabled_keeps_no_events(self):
        rec = TelemetryRecorder(trace=False)
        with rec.span("phase"):
            rec.event("tick", n=1)
        assert rec.trace_events == []
        assert rec.value("phase.calls") == 1

    def test_instant_events(self):
        rec = TelemetryRecorder(trace=True, clock=FakeClock(step=0.5))
        rec.event("mark", kind="checkpoint")
        (event,) = rec.trace_events
        assert event["ph"] == "i"
        assert event["args"] == {"kind": "checkpoint"}

    def test_save_trace_writes_jsonl(self, tmp_path):
        rec = TelemetryRecorder(trace=True, clock=FakeClock(step=1.0))
        with rec.span("a"):
            pass
        rec.event("b")
        path = tmp_path / "trace.jsonl"
        rec.save_trace(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        names = {json.loads(line)["name"] for line in lines}
        assert names == {"a", "b"}

    def test_span_timing_uses_injected_clock(self):
        clock = FakeClock(step=2.0)
        rec = TelemetryRecorder(clock=clock)
        with rec.span("slow"):
            pass
        hist = rec.registry.histograms["slow.seconds"]
        assert hist.total == pytest.approx(2.0)


class TestMakeRecorder:
    def test_disabled_returns_none(self):
        assert make_recorder(False) is None

    def test_enabled_returns_recorder(self):
        rec = make_recorder(True)
        assert isinstance(rec, TelemetryRecorder)
        assert rec.trace_enabled is False

    def test_trace_implies_recorder(self):
        rec = make_recorder(False, trace=True)
        assert isinstance(rec, TelemetryRecorder)
        assert rec.trace_enabled is True


class TestNoOpOverhead:
    def test_null_recorder_overhead_is_small(self):
        """Instrumented loop with NULL_RECORDER stays near bare-loop cost."""
        import timeit

        def bare():
            total = 0
            for i in range(1000):
                total += i
            return total

        def instrumented():
            total = 0
            rec = NULL_RECORDER
            for i in range(1000):
                rec.count("n")
                total += i
            return total

        bare_s = min(timeit.repeat(bare, number=200, repeat=5))
        inst_s = min(timeit.repeat(instrumented, number=200, repeat=5))
        # A no-op method call per iteration should cost no more than a
        # few times the bare loop body — generous bound for CI jitter.
        assert inst_s < bare_s * 6
