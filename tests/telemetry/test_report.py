"""Unit tests for repro.telemetry.report: schema, round-trip, diffing."""

import json

import pytest

from repro.telemetry import (
    FAULT_STATUSES,
    FaultRecord,
    PassReport,
    RunReport,
    SCHEMA,
    diff_reports,
    render_diff,
    validate_report,
)


def sample_report(**overrides):
    report = RunReport(
        circuit="s27",
        generator="ga-hitec",
        total_faults=4,
        seed=1,
        backend="event",
        detected=3,
        untestable=1,
        vectors=7,
        fault_coverage=0.75,
        wall_time_s=1.25,
        cpu_time_s=1.0,
        kernel_compiles=2,
        kernel_compile_s=0.05,
        passes=[
            PassReport(
                number=1,
                approach="ga",
                targeted=4,
                detected_new=3,
                untestable_new=1,
                ga_justified=2,
                time_s=1.0,
            )
        ],
        faults=[
            FaultRecord("g1/0", "detected", pass_number=1, targeted=1,
                        justification="ga", ga_generations=3),
            FaultRecord("g2/1", "detected", pass_number=1, targeted=1,
                        justification="deterministic", backtracks=5),
            FaultRecord("g3/0", "detected", pass_number=1, incidental=True),
            FaultRecord("g4/1", "untestable", pass_number=1, targeted=1),
        ],
        metrics={"counters": {"atpg.backtracks": 5}, "histograms": {}},
    )
    for name, value in overrides.items():
        setattr(report, name, value)
    return report


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        report = sample_report()
        clone = RunReport.from_dict(report.to_dict())
        assert clone == report

    def test_json_round_trip(self):
        report = sample_report()
        clone = RunReport.from_dict(json.loads(report.to_json()))
        assert clone == report

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "report.json"
        report = sample_report()
        report.save(str(path))
        assert RunReport.load(str(path)) == report

    def test_schema_marker_embedded(self):
        assert sample_report().to_dict()["schema"] == SCHEMA


class TestValidation:
    def test_valid_report_has_no_problems(self):
        assert validate_report(sample_report().to_dict()) == []

    def test_rejects_non_object(self):
        assert validate_report([1, 2]) == ["report must be a JSON object"]

    def test_rejects_wrong_schema(self):
        data = sample_report().to_dict()
        data["schema"] = "repro-run-report/v0"
        assert any("schema" in p for p in validate_report(data))

    def test_rejects_missing_keys(self):
        data = sample_report().to_dict()
        del data["total_faults"]
        assert any("total_faults" in p for p in validate_report(data))

    def test_rejects_wrong_types(self):
        data = sample_report().to_dict()
        data["detected"] = "three"
        data["jobs"] = True  # bool is not an int for schema purposes
        problems = validate_report(data)
        assert any("'detected'" in p for p in problems)
        assert any("'jobs'" in p for p in problems)

    def test_rejects_unknown_fault_status(self):
        data = sample_report().to_dict()
        data["faults"][0]["status"] = "exploded"
        assert any("unknown status" in p for p in validate_report(data))

    def test_rejects_unknown_justification(self):
        data = sample_report().to_dict()
        data["faults"][0]["justification"] = "magic"
        assert any("justification" in p for p in validate_report(data))

    def test_rejects_malformed_pass_rows(self):
        data = sample_report().to_dict()
        data["passes"][0] = {"number": 1}
        data["passes"].append("not a dict")
        problems = validate_report(data)
        assert any("passes[0] missing" in p for p in problems)
        assert any("passes[1] is not an object" in p for p in problems)

    def test_from_dict_raises_on_invalid(self):
        with pytest.raises(ValueError, match="invalid run report"):
            RunReport.from_dict({"schema": "nope"})

    def test_status_vocabulary_is_closed(self):
        assert set(FAULT_STATUSES) == {
            "detected",
            "untestable",
            "aborted",
            "prefiltered",
        }


class TestDiffing:
    def test_identical_reports_diff_to_zero(self):
        rows = diff_reports(sample_report(), sample_report())
        assert all(delta == 0 for (_, _, delta) in rows.values())

    def test_scalar_deltas(self):
        new = sample_report(detected=4, fault_coverage=1.0)
        old = sample_report()
        rows = diff_reports(new, old)
        assert rows["detected"] == (4, 3, 1)
        assert rows["fault_coverage"] == (1.0, 0.75, 0.25)

    def test_counter_union_with_missing_as_zero(self):
        new = sample_report(
            metrics={"counters": {"a": 2, "b": 1}, "histograms": {}}
        )
        old = sample_report(
            metrics={"counters": {"b": 4, "c": 9}, "histograms": {}}
        )
        rows = diff_reports(new, old)
        assert rows["counters.a"] == (2, 0, 2)
        assert rows["counters.b"] == (1, 4, -3)
        assert rows["counters.c"] == (0, 9, -9)

    def test_render_diff_full_and_changed_only(self):
        new = sample_report(detected=4)
        old = sample_report()
        full = render_diff(new, old)
        assert "detected" in full and "total_faults" in full
        changed = render_diff(new, old, only_changed=True)
        assert "detected" in changed
        assert "\ntotal_faults" not in changed


class TestSummary:
    def test_summary_mentions_key_facts(self):
        text = sample_report().summary()
        assert "s27" in text
        assert "75.0%" in text
        assert "pass 1" in text
        assert "detected=3" in text and "untestable=1" in text
        assert "atpg.backtracks" in text


class TestMergeDeterminism:
    def merge(self, reports):
        from repro.telemetry import merge_run_reports

        return merge_run_reports(reports, circuit="all")

    def reports(self):
        a = sample_report(circuit="s27")
        b = sample_report(circuit="am2910")
        c = sample_report(circuit="s27", seed=2)
        c.faults = [FaultRecord("z9/1", "aborted", pass_number=2)]
        return [a, b, c]

    def test_disposition_order_ignores_input_order(self):
        forward = self.merge(self.reports())
        backward = self.merge(list(reversed(self.reports())))
        assert [f.fault for f in forward.faults] == [
            f.fault for f in backward.faults
        ]

    def test_dispositions_grouped_by_circuit(self):
        merged = self.merge(self.reports())
        circuits = [f.fault.split(":")[0] for f in merged.faults]
        assert circuits == sorted(circuits)

    def test_within_report_record_order_preserved(self):
        merged = self.merge(self.reports())
        s27_first = [
            f.fault for f in merged.faults
            if f.fault.startswith("s27:") and f.fault != "s27:z9/1"
        ]
        assert s27_first == [
            "s27:g1/0", "s27:g2/1", "s27:g3/0", "s27:g4/1"
        ]

    def test_features_survive_the_merge(self):
        report = sample_report()
        report.faults[0].features = {"cc0": 2.0}
        merged = self.merge([report])
        assert merged.faults[0].features == {"cc0": 2.0}
