"""Shared benchmark configuration.

Budgets
-------
The paper's per-fault limits (1 s / 10 s / 100 s on a 1995 SPARCstation-20
running compiled C++) are scaled down for a pure-Python simulator via
``time_scale`` so the default benchmark run finishes in minutes.  Two
environment switches widen the run:

* ``REPRO_FULL=1`` — benchmark every Table II circuit instead of the quick
  set (hours of runtime on the larger stand-ins).
* ``REPRO_TIME_SCALE=<float>`` — override the per-fault budget scale.

Every benchmark writes its rendered table to ``benchmarks/out/`` so the
numbers that back EXPERIMENTS.md are regenerated on each run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Per-fault time budget as a fraction of the paper's limits.
TIME_SCALE = float(os.environ.get("REPRO_TIME_SCALE", "0.01"))

#: PODEM backtrack budget for pass 1 (grows per pass like the paper's x10).
BACKTRACK_BASE = int(os.environ.get("REPRO_BACKTRACKS", "30"))

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Circuits benchmarked by default (small enough for pure Python).
QUICK_TABLE2 = ["s27", "s298", "s344", "s386"]

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered table next to the benchmarks."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text, encoding="utf-8")
