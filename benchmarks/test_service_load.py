"""Service load: hundreds of concurrent submit+stream clients, one server.

The harness boots one in-process service and unleashes ``N_CLIENTS``
threads against it; every client submits its own drill-mode campaign
(unique seed, so no dedup) and immediately opens the job's SSE stream,
holding the connection until the ``end`` frame arrives.  Drill items
replace ATPG with fixed micro-sleeps, so the numbers measure the service
itself: HTTP handling, queue dispatch, journal fsync traffic, and one
journal-tailing stream per client.

Asserted here and gated again by ``check_regression.py --campaign``:

* **zero dropped streams** — every one of the ``N_CLIENTS`` SSE streams
  must deliver its terminal ``end`` frame;
* **bounded queue latency** — the worst queued→started wait stays under
  ``MAX_QUEUE_WAIT_S`` even with every job fighting for
  ``MAX_RUNNING`` executor slots.

Results are merged into ``BENCH_campaign.json`` under a ``"service"``
key (read-modify-write: the scaling benchmark's sections survive) and
rendered to ``benchmarks/out/service_load.txt``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.request
from pathlib import Path

from repro.service import start_service
from repro.telemetry import TelemetryRecorder

from .conftest import write_artifact

#: Concurrent submit+stream clients (the acceptance floor is 100).
N_CLIENTS = 120

#: Campaigns executed concurrently by the service under test.
MAX_RUNNING = 4

#: Worst acceptable queued→started wait for any job, seconds.  Generous:
#: 120 drill jobs over 4 slots on a loaded CI runner, but far below the
#: "queue wedged" regime this exists to catch.
MAX_QUEUE_WAIT_S = 120.0

BENCH_PATH = Path(__file__).parent.parent / "BENCH_campaign.json"


def drill_spec(seed):
    return {
        "circuits": ["s27"],
        "name": "service-load",
        "seed": seed,
        "shard_size": 4,
        "fault_limit": 8,
        "synthetic_item_seconds": 0.002,
    }


class Client:
    """One submit+stream client; runs on its own thread."""

    def __init__(self, base, seed):
        self.base = base
        self.seed = seed
        self.job_id = None
        self.submit_s = None
        self.total_s = None
        self.ended = False
        self.error = None

    def __call__(self):
        try:
            t0 = time.perf_counter()
            body = json.dumps(
                {"spec": drill_spec(self.seed), "client": f"c{self.seed}"}
            ).encode()
            req = urllib.request.Request(
                self.base + "/jobs", data=body, method="POST"
            )
            with urllib.request.urlopen(req) as resp:
                self.job_id = json.loads(resp.read())["job"]
            self.submit_s = time.perf_counter() - t0
            with urllib.request.urlopen(
                self.base + f"/jobs/{self.job_id}/events"
            ) as resp:
                event = None
                for raw in resp:
                    line = raw.decode("utf-8").rstrip("\n")
                    if line.startswith("event: "):
                        event = line[len("event: "):]
                    elif line.startswith("data: ") and event == "end":
                        payload = json.loads(line[len("data: "):])
                        self.ended = payload["state"] == "done"
                        break
            self.total_s = time.perf_counter() - t0
        except Exception as exc:  # noqa: BLE001 — recorded, not raised
            self.error = f"{type(exc).__name__}: {exc}"


def percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_service_load(tmp_path):
    telemetry = TelemetryRecorder()

    async def scenario():
        server, manager, (host, port) = await start_service(
            str(tmp_path),
            telemetry=telemetry,
            max_running=MAX_RUNNING,
            max_queue=2 * N_CLIENTS,
            client_quota=4,
            poll_interval=0.05,
        )
        base = f"http://{host}:{port}"
        clients = [Client(base, seed) for seed in range(N_CLIENTS)]
        threads = [
            threading.Thread(target=client, daemon=True)
            for client in clients
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        deadline = 600.0
        while any(thread.is_alive() for thread in threads):
            if time.perf_counter() - t0 > deadline:
                break
            await asyncio.sleep(0.05)
        wall = time.perf_counter() - t0
        # queued→started waits come from the jobs themselves
        waits = [
            job.started_ts - job.submitted_ts
            for job in manager.jobs.values()
            if job.started_ts is not None
        ]
        stats = manager.stats()
        await server.close()
        await manager.stop()
        return clients, wall, waits, stats

    clients, wall, waits, stats = asyncio.run(scenario())

    errors = [c.error for c in clients if c.error]
    dropped = [c for c in clients if not c.ended]
    submit = [c.submit_s for c in clients if c.submit_s is not None]
    totals = [c.total_s for c in clients if c.total_s is not None]
    counters = stats["metrics"]["counters"]
    histograms = stats["metrics"]["histograms"]
    lag = histograms.get("service.stream.lag_s", {})

    lines = [
        f"Service load — {N_CLIENTS} concurrent submit+stream clients",
        f"  wall: {wall:6.2f} s  (max_running={MAX_RUNNING})",
        f"  dropped streams: {len(dropped)}   client errors: {len(errors)}",
        f"  submit latency: p50 {percentile(submit, 0.50) * 1e3:6.1f} ms   "
        f"p95 {percentile(submit, 0.95) * 1e3:6.1f} ms",
        f"  submit→end:     p50 {percentile(totals, 0.50):6.2f} s    "
        f"p95 {percentile(totals, 0.95):6.2f} s",
        f"  queue wait:     p95 {percentile(waits, 0.95):6.2f} s    "
        f"max {max(waits):6.2f} s  (bound {MAX_QUEUE_WAIT_S:.0f} s)",
        f"  stream events: {counters.get('service.stream.events', 0)}   "
        f"mean lag {lag.get('mean', 0.0) * 1e3:.1f} ms",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("service_load.txt", text)

    payload = {
        "clients": N_CLIENTS,
        "max_running": MAX_RUNNING,
        "wall_seconds": round(wall, 3),
        "dropped_streams": len(dropped),
        "client_errors": len(errors),
        "submit_p95_s": round(percentile(submit, 0.95), 4),
        "stream_end_p95_s": round(percentile(totals, 0.95), 4),
        "queue_wait_p95_s": round(percentile(waits, 0.95), 4),
        "queue_wait_max_s": round(max(waits), 4),
        "queue_wait_bound_s": MAX_QUEUE_WAIT_S,
        "stream_events": counters.get("service.stream.events", 0),
        "stream_lag_mean_s": round(lag.get("mean", 0.0), 4),
    }
    # read-modify-write: the scaling benchmark owns the other sections
    try:
        bench = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        bench = {"schema": "repro-bench-campaign/v1"}
    bench["service"] = payload
    BENCH_PATH.write_text(
        json.dumps(bench, indent=2) + "\n", encoding="utf-8"
    )

    assert not errors, f"client errors: {errors[:5]}"
    assert not dropped, f"{len(dropped)} SSE streams never saw 'end'"
    assert max(waits) <= MAX_QUEUE_WAIT_S
