"""Section V ablation: starting GA justification from the current state.

The paper: *"GA-HITEC is able to make use of the current good circuit
state, i.e., the state reached after all previous sequences in the test
set have been applied.  In contrast, HITEC always backtraces to a time
frame in which all flip-flops are set to unknown values."*

This benchmark runs GA-HITEC twice — once using the current good state
(the paper's behaviour) and once forcing the GA to start from all-X —
and compares detections and GA-justification successes in the GA passes.
"""

from __future__ import annotations

import pytest

from repro.circuits import iscas89
from repro.hybrid import HybridTestGenerator, gahitec_schedule

from .conftest import BACKTRACK_BASE, TIME_SCALE, write_artifact


@pytest.mark.parametrize("name", ["s298", "s344"])
def test_current_state_ablation(benchmark, name):
    circuit = iscas89(name)
    schedule = gahitec_schedule(
        x=4 * circuit.sequential_depth,
        num_passes=2,
        time_scale=TIME_SCALE,
        backtrack_base=BACKTRACK_BASE,
    )

    def run_both():
        with_state = HybridTestGenerator(
            iscas89(name), seed=1, use_current_state=True
        ).run(schedule)
        without = HybridTestGenerator(
            iscas89(name), seed=1, use_current_state=False
        ).run(schedule)
        return with_state, without

    with_state, without = benchmark.pedantic(run_both, iterations=1, rounds=1)

    ga_with = sum(p.ga_justified for p in with_state.passes)
    ga_without = sum(p.ga_justified for p in without.passes)
    lines = [
        f"Current-state ablation — {name} (GA passes only):",
        f"  from current state: {len(with_state.detected)} detected, "
        f"{ga_with} GA justifications",
        f"  from all-unknown  : {len(without.detected)} detected, "
        f"{ga_without} GA justifications",
    ]
    # allow one or two faults of seed noise: the claim is about capability
    verdict = (
        "PASS" if len(with_state.detected) + 2 >= len(without.detected)
        else "FAIL"
    )
    lines.append(
        f"  [{verdict}] current-state start detects at least as many "
        "(±2 noise; the paper's stated GA-HITEC advantage)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact(f"ablation_current_state_{name}.txt", text)
