"""Section IV-A ablation: bitwise word parallelism in the simulator.

The paper packs 32 candidate sequences into the bits of one machine word;
Python integers make the width a free parameter.  This benchmark measures
fault-simulation throughput (gate-pattern evaluations per second) as the
word width grows, confirming the design choice the paper inherits from
PROOFS: wider words amortise the per-gate interpretation cost across
patterns.

Each width is measured under all three simulation backends — the
event-driven interpreter, the generated straight-line kernels, and the
vectorized numpy matrix sweep — and the comparison is written both as a
rendered table (``benchmarks/out/``) and as machine-readable
``BENCH_simulation.json`` at the repository root.

Two further metrics target the numpy backend's reason for existing:

* the *grading* workload — several fault batches of **distinct** shapes
  graded cold (fresh process state), the regime of
  ``FaultSimulator.grade_blocks`` and campaign merge, where codegen must
  exec-compile a kernel per shape while one numpy program serves all;
* the *cold vs warm* kernel-cache comparison — with a persistent cache
  directory, a warm process must report **zero** compilations.

A transition-model row repeats the grading workload under the
transition fault model (same batch shapes): its codegen cost over the
stuck-at row measures what the launch/capture injection planes add,
gated by ``check_regression.py --max-transition-overhead``.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.circuits import iscas89
from repro.faults.collapse import collapse_faults
from repro.simulation import kernel_cache
from repro.simulation.codegen import COMPILE_STATS
from repro.simulation.compiled import compile_circuit
from repro.simulation.fault_sim import FaultSimulator

from .conftest import write_artifact

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

WIDTHS = [1, 8, 32, 64, 256, 1024]
BACKENDS = ["event", "codegen"] + (["numpy"] if HAVE_NUMPY else [])

CIRCUIT = "s298"
N_VECTORS = 64

#: Distinct-shape grading workload: fault-batch sizes and frames per
#: block.  Each batch has a different injection signature, so the
#: codegen backend compiles a fresh kernel per batch while the numpy
#: backend reuses its one per-circuit program.
GRADE_SIZES = [246, 243, 123, 37]
GRADE_FRAMES = 16
GRADE_WIDTH = 256

_rows = {}
_grade = {}
_tgrade = {}


def _maybe_render():
    if (
        len(_rows) == len(WIDTHS) * len(BACKENDS)
        and len(_grade) == len(BACKENDS)
        and len(_tgrade) == len(BACKENDS)
    ):
        _render()


def _workload():
    circuit = iscas89(CIRCUIT)
    faults = collapse_faults(circuit)
    rng = random.Random(5)
    vectors = [
        [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(N_VECTORS)
    ]
    return circuit, faults, vectors


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_fault_sim_width(benchmark, backend, width):
    circuit, faults, vectors = _workload()
    sim = FaultSimulator(circuit, width=width, backend=backend)

    def run():
        return sim.run(vectors, faults, stop_on_all_detected=False)

    # one warmup round so the codegen backend's per-shape kernel cache is
    # populated — steady state is what both backends run at in the driver
    benchmark.pedantic(run, iterations=1, rounds=3, warmup_rounds=1)
    _rows[(backend, width)] = benchmark.stats.stats.mean

    # detection results must be width- and backend-independent
    baseline = FaultSimulator(circuit, width=1).run(
        vectors[:8], faults[:20], stop_on_all_detected=False
    )
    wide = FaultSimulator(circuit, width=width, backend=backend).run(
        vectors[:8], faults[:20], stop_on_all_detected=False
    )
    assert set(baseline.detected) == set(wide.detected)
    _maybe_render()


def _grade_workload(fault_model="stuck_at"):
    circuit = iscas89(CIRCUIT)
    faults = collapse_faults(circuit, fault_model)
    rng = random.Random(5)
    sizes = [min(n, len(faults)) for n in GRADE_SIZES]
    blocks = [
        [[rng.getrandbits(1) for _ in circuit.inputs]
         for _ in range(GRADE_FRAMES)]
        for _ in sizes
    ]
    batches = [faults[:n] for n in sizes]
    return blocks, batches


@pytest.mark.parametrize("backend", BACKENDS)
def test_fault_sim_grading(benchmark, backend):
    """Cold distinct-shape grading: the campaign-merge regime."""
    blocks, batches = _grade_workload()

    def run():
        # a fresh compiled circuit per round reproduces per-process cold
        # state: codegen recompiles every batch shape, numpy rebuilds one
        # program
        cc = compile_circuit(iscas89(CIRCUIT))
        sim = FaultSimulator(cc, width=GRADE_WIDTH, backend=backend)
        for block, batch in zip(blocks, batches):
            sim.run(block, batch, stop_on_all_detected=False)

    benchmark.pedantic(run, iterations=1, rounds=7, warmup_rounds=1)
    _grade[backend] = benchmark.stats.stats.mean
    _maybe_render()


@pytest.mark.parametrize("backend", BACKENDS)
def test_fault_sim_grading_transition(benchmark, backend):
    """Distinct-shape grading under the transition fault model.

    Same batch sizes as the stuck-at workload, so the codegen overhead
    ratio isolates what the launch/capture injection planes cost (the
    extra previous-frame combine per faulty site).
    """
    blocks, batches = _grade_workload("transition")

    def run():
        cc = compile_circuit(iscas89(CIRCUIT))
        sim = FaultSimulator(cc, width=GRADE_WIDTH, backend=backend)
        for block, batch in zip(blocks, batches):
            sim.run(block, batch, stop_on_all_detected=False)

    benchmark.pedantic(run, iterations=1, rounds=7, warmup_rounds=1)
    _tgrade[backend] = benchmark.stats.stats.mean
    _maybe_render()


def _measure_cache_warmup(tmp_dir):
    """(cold compiles, warm compiles) with a persistent kernel cache."""

    def one_pass():
        from repro.simulation import numpy_backend

        compiles0 = COMPILE_STATS["kernels"]
        programs0 = numpy_backend.PROGRAM_STATS["programs"]
        blocks, batches = _grade_workload()
        for backend in ("codegen", "numpy") if HAVE_NUMPY else ("codegen",):
            cc = compile_circuit(iscas89(CIRCUIT))
            sim = FaultSimulator(cc, width=GRADE_WIDTH, backend=backend)
            sim.run(blocks[0], batches[0], stop_on_all_detected=False)
        return int(
            COMPILE_STATS["kernels"]
            - compiles0
            + numpy_backend.PROGRAM_STATS["programs"]
            - programs0
        )

    kernel_cache.configure(str(tmp_dir))
    try:
        cold = one_pass()
        warm = one_pass()  # fresh compiled circuits, populated cache
    finally:
        kernel_cache.configure(None)
    return cold, warm


def _render():
    import tempfile

    circuit, faults, vectors = _workload()
    base = _rows[("event", 1)]
    lines = [f"Fault-simulation word-width ablation — {CIRCUIT} stand-in:"]
    for backend in BACKENDS:
        lines.append(f"  backend={backend}:")
        for width in WIDTHS:
            seconds = _rows[(backend, width)]
            speedup = base / seconds if seconds else float("inf")
            lines.append(
                f"    width {width:>4d}: {seconds * 1e3:8.1f} ms per pass "
                f"({speedup:5.2f}x vs event width 1)"
            )
    wide_speedup = base / _rows[("event", max(WIDTHS))]
    verdict = "PASS" if wide_speedup > 2.0 else "FAIL"
    lines.append(
        f"  [{verdict}] wide words give substantial speedup "
        "(the PROOFS design choice the paper builds on)"
    )
    codegen_speedup = _rows[("event", 64)] / _rows[("codegen", 64)]
    verdict = "PASS" if codegen_speedup >= 3.0 else "FAIL"
    lines.append(
        f"  [{verdict}] codegen kernels are {codegen_speedup:.2f}x faster "
        "than the event backend at width 64 (target: 3x)"
    )

    lines.append(
        f"  distinct-shape grading ({len(GRADE_SIZES)} cold batches, "
        f"width {GRADE_WIDTH}):"
    )
    for backend in BACKENDS:
        lines.append(
            f"    {backend:>8s}: {_grade[backend] * 1e3:8.1f} ms"
        )
    numpy_grade_speedup = None
    if "numpy" in _grade:
        numpy_grade_speedup = _grade["codegen"] / _grade["numpy"]
        verdict = "PASS" if numpy_grade_speedup >= 3.0 else "FAIL"
        lines.append(
            f"  [{verdict}] numpy grades distinct shapes "
            f"{numpy_grade_speedup:.2f}x faster than codegen at width "
            f"{GRADE_WIDTH} (target: 3x)"
        )

    lines.append(
        f"  transition-model grading (same {len(GRADE_SIZES)} batch "
        f"shapes, width {GRADE_WIDTH}):"
    )
    for backend in BACKENDS:
        lines.append(
            f"    {backend:>8s}: {_tgrade[backend] * 1e3:8.1f} ms"
        )
    transition_overhead = _tgrade["codegen"] / _grade["codegen"]
    verdict = "PASS" if transition_overhead <= 3.0 else "FAIL"
    lines.append(
        f"  [{verdict}] transition grading costs "
        f"{transition_overhead:.2f}x stuck-at on codegen (ceiling: 3x)"
    )

    with tempfile.TemporaryDirectory() as tmp_dir:
        cold_compiles, warm_compiles = _measure_cache_warmup(tmp_dir)
    verdict = "PASS" if cold_compiles > 0 and warm_compiles == 0 else "FAIL"
    lines.append(
        f"  [{verdict}] persistent kernel cache: {cold_compiles} cold "
        f"compiles, {warm_compiles} warm (target: 0 warm)"
    )

    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("ablation_parallelism.txt", text)

    payload = {
        "circuit": CIRCUIT,
        "frames": N_VECTORS,
        "faults": len(faults),
        "widths": WIDTHS,
        "backends": BACKENDS,
        "seconds": {
            backend: {str(w): _rows[(backend, w)] for w in WIDTHS}
            for backend in BACKENDS
        },
        "codegen_speedup_width64": codegen_speedup,
        "grade_seconds": {b: _grade[b] for b in BACKENDS},
        "grade_width": GRADE_WIDTH,
        "grade_batches": len(GRADE_SIZES),
        "kernel_compiles_cold": cold_compiles,
        "kernel_compiles_warm": warm_compiles,
        "transition_grade_seconds": {b: _tgrade[b] for b in BACKENDS},
        "transition_grade_overhead_codegen": transition_overhead,
    }
    if numpy_grade_speedup is not None:
        payload["numpy_grade_speedup_width256"] = numpy_grade_speedup
    Path(__file__).parent.parent.joinpath("BENCH_simulation.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
