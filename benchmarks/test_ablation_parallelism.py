"""Section IV-A ablation: bitwise word parallelism in the simulator.

The paper packs 32 candidate sequences into the bits of one machine word;
Python integers make the width a free parameter.  This benchmark measures
fault-simulation throughput (gate-pattern evaluations per second) as the
word width grows, confirming the design choice the paper inherits from
PROOFS: wider words amortise the per-gate interpretation cost across
patterns.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.circuits import iscas89
from repro.faults.collapse import collapse_faults
from repro.simulation.fault_sim import FaultSimulator

from .conftest import write_artifact

WIDTHS = [1, 8, 32, 64, 256]

_rows = {}


@pytest.mark.parametrize("width", WIDTHS)
def test_fault_sim_width(benchmark, width):
    circuit = iscas89("s298")
    faults = collapse_faults(circuit)
    rng = random.Random(5)
    vectors = [
        [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(64)
    ]
    sim = FaultSimulator(circuit, width=width)

    def run():
        return sim.run(vectors, faults, stop_on_all_detected=False)

    result = benchmark.pedantic(run, iterations=1, rounds=3)
    _rows[width] = benchmark.stats.stats.mean

    # detection results must be width-independent
    baseline = FaultSimulator(circuit, width=1).run(
        vectors[:8], faults[:20], stop_on_all_detected=False
    )
    wide = FaultSimulator(circuit, width=width).run(
        vectors[:8], faults[:20], stop_on_all_detected=False
    )
    assert set(baseline.detected) == set(wide.detected)
    if len(_rows) == len(WIDTHS):
        _render()


def _render():
    base = _rows[1]
    lines = ["Fault-simulation word-width ablation — s298 stand-in:"]
    for width, seconds in sorted(_rows.items()):
        speedup = base / seconds if seconds else float("inf")
        lines.append(
            f"  width {width:>4d}: {seconds * 1e3:8.1f} ms per pass "
            f"({speedup:5.2f}x vs width 1)"
        )
    wide_speedup = base / _rows[max(_rows)]
    verdict = "PASS" if wide_speedup > 2.0 else "FAIL"
    lines.append(
        f"  [{verdict}] wide words give substantial speedup "
        "(the PROOFS design choice the paper builds on)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("ablation_parallelism.txt", text)
