"""Section IV-A ablation: bitwise word parallelism in the simulator.

The paper packs 32 candidate sequences into the bits of one machine word;
Python integers make the width a free parameter.  This benchmark measures
fault-simulation throughput (gate-pattern evaluations per second) as the
word width grows, confirming the design choice the paper inherits from
PROOFS: wider words amortise the per-gate interpretation cost across
patterns.

Each width is measured under both simulation backends — the event-driven
interpreter and the generated straight-line kernels — and the comparison
is written both as a rendered table (``benchmarks/out/``) and as
machine-readable ``BENCH_simulation.json`` at the repository root.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.circuits import iscas89
from repro.faults.collapse import collapse_faults
from repro.simulation.fault_sim import FaultSimulator

from .conftest import write_artifact

WIDTHS = [1, 8, 32, 64, 256]
BACKENDS = ["event", "codegen"]

CIRCUIT = "s298"
N_VECTORS = 64

_rows = {}


def _workload():
    circuit = iscas89(CIRCUIT)
    faults = collapse_faults(circuit)
    rng = random.Random(5)
    vectors = [
        [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(N_VECTORS)
    ]
    return circuit, faults, vectors


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_fault_sim_width(benchmark, backend, width):
    circuit, faults, vectors = _workload()
    sim = FaultSimulator(circuit, width=width, backend=backend)

    def run():
        return sim.run(vectors, faults, stop_on_all_detected=False)

    # one warmup round so the codegen backend's per-shape kernel cache is
    # populated — steady state is what both backends run at in the driver
    benchmark.pedantic(run, iterations=1, rounds=3, warmup_rounds=1)
    _rows[(backend, width)] = benchmark.stats.stats.mean

    # detection results must be width- and backend-independent
    baseline = FaultSimulator(circuit, width=1).run(
        vectors[:8], faults[:20], stop_on_all_detected=False
    )
    wide = FaultSimulator(circuit, width=width, backend=backend).run(
        vectors[:8], faults[:20], stop_on_all_detected=False
    )
    assert set(baseline.detected) == set(wide.detected)
    if len(_rows) == len(WIDTHS) * len(BACKENDS):
        _render()


def _render():
    circuit, faults, vectors = _workload()
    base = _rows[("event", 1)]
    lines = [f"Fault-simulation word-width ablation — {CIRCUIT} stand-in:"]
    for backend in BACKENDS:
        lines.append(f"  backend={backend}:")
        for width in WIDTHS:
            seconds = _rows[(backend, width)]
            speedup = base / seconds if seconds else float("inf")
            lines.append(
                f"    width {width:>4d}: {seconds * 1e3:8.1f} ms per pass "
                f"({speedup:5.2f}x vs event width 1)"
            )
    wide_speedup = base / _rows[("event", max(WIDTHS))]
    verdict = "PASS" if wide_speedup > 2.0 else "FAIL"
    lines.append(
        f"  [{verdict}] wide words give substantial speedup "
        "(the PROOFS design choice the paper builds on)"
    )
    codegen_speedup = _rows[("event", 64)] / _rows[("codegen", 64)]
    verdict = "PASS" if codegen_speedup >= 3.0 else "FAIL"
    lines.append(
        f"  [{verdict}] codegen kernels are {codegen_speedup:.2f}x faster "
        "than the event backend at width 64 (target: 3x)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("ablation_parallelism.txt", text)

    payload = {
        "circuit": CIRCUIT,
        "frames": N_VECTORS,
        "faults": len(faults),
        "widths": WIDTHS,
        "backends": BACKENDS,
        "seconds": {
            backend: {str(w): _rows[(backend, w)] for w in WIDTHS}
            for backend in BACKENDS
        },
        "codegen_speedup_width64": codegen_speedup,
    }
    Path(__file__).parent.parent.joinpath("BENCH_simulation.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
