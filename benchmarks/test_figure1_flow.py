"""Figure 1: the hybrid test-generation flow, traced.

Figure 1 of the paper is the control-flow diagram: target a fault, excite
it, propagate the effect to a PO, backtrace to the PIs and frame-0
flip-flops, justify the state with the GA, and loop back into the
propagation phase when justification fails.  This benchmark realises the
figure as data: it runs GA-HITEC's first pass and reports how many times
each arrow of the diagram was taken, asserting the structural relations
the figure implies.
"""

from __future__ import annotations

import pytest

from repro.atpg.hitec import FlowCounters, SequentialTestGenerator
from repro.atpg.podem import Limits
from repro.circuits import iscas89
from repro.faults.collapse import collapse_faults
from repro.ga import GAJustifyParams, GAStateJustifier
from repro.simulation.compiled import compile_circuit

from .conftest import BACKTRACK_BASE, write_artifact

import random


def trace_flow(name: str, max_faults: int = 80) -> FlowCounters:
    circuit = iscas89(name)
    cc = compile_circuit(circuit)
    gen = SequentialTestGenerator(cc, max_frames=8)
    justifier_rng = random.Random(0)
    ga = GAStateJustifier(cc, rng=justifier_rng)
    params = GAJustifyParams(seq_len=4 * circuit.sequential_depth or 8,
                             population_size=64, generations=4)

    total = FlowCounters()
    for fault in collapse_faults(circuit)[:max_faults]:
        res = gen.generate(
            fault,
            lambda req: ga.justify(req, params, fault=fault),
            Limits(max_backtracks=BACKTRACK_BASE),
        )
        c = res.counters
        total.excite_attempts += c.excite_attempts
        total.propagation_solutions += c.propagation_solutions
        total.justify_calls += c.justify_calls
        total.justify_successes += c.justify_successes
        total.propagation_backtracks += c.propagation_backtracks
    return total


@pytest.mark.parametrize("name", ["s27", "s298"])
def test_figure1_flow(benchmark, name):
    flow = benchmark.pedantic(trace_flow, args=(name,), iterations=1, rounds=1)

    # structural relations implied by the Figure 1 diagram:
    # every justification call belongs to some propagation solution …
    assert flow.justify_calls <= flow.propagation_solutions
    # … successes are a subset of calls …
    assert flow.justify_successes <= flow.justify_calls
    # … and every failed justification re-enters the propagation phase.
    assert flow.propagation_backtracks >= (
        flow.justify_calls - flow.justify_successes
    )

    text = "\n".join([
        f"Figure 1 flow trace — {name} (first pass, GA justification)",
        f"  fault excitation/propagation searches : {flow.excite_attempts}",
        f"  propagation solutions found           : {flow.propagation_solutions}",
        f"  state justifications attempted (GA)   : {flow.justify_calls}",
        f"  state justifications succeeded        : {flow.justify_successes}",
        f"  backtracks into the propagation phase : {flow.propagation_backtracks}",
    ])
    print("\n" + text)
    write_artifact(f"figure1_{name}.txt", text)
