"""Robustness study: seed sensitivity of the stochastic passes.

The paper reports single runs (standard for 1995); a modern reproduction
should show that GA-HITEC's advantage is not a lucky seed.  This
benchmark sweeps both generators over several seeds on one circuit and
reports mean ± sample standard deviation of the paper's columns.
(The HITEC baseline is deterministic given a seed only through don't-care
fill, so its variance is expected to be near zero.)
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import compare_sweeps, seed_sweep
from repro.circuits import iscas89
from repro.hybrid import gahitec, gahitec_schedule, hitec_baseline, hitec_schedule

from .conftest import BACKTRACK_BASE, TIME_SCALE, write_artifact

SEEDS = (0, 1, 2)


@pytest.mark.parametrize("name", ["s298"])
def test_seed_variance(benchmark, name):
    x = 4 * iscas89(name).sequential_depth

    def run_sweeps():
        hybrid = seed_sweep(
            "GA-HITEC",
            lambda seed: gahitec(iscas89(name), seed=seed).run(
                gahitec_schedule(x=x, num_passes=2, time_scale=TIME_SCALE,
                                 backtrack_base=BACKTRACK_BASE)
            ),
            seeds=SEEDS,
        )
        det = seed_sweep(
            "HITEC",
            lambda seed: hitec_baseline(iscas89(name), seed=seed).run(
                hitec_schedule(num_passes=2, time_scale=TIME_SCALE,
                               backtrack_base=BACKTRACK_BASE)
            ),
            seeds=SEEDS,
        )
        return hybrid, det

    hybrid, det = benchmark.pedantic(run_sweeps, iterations=1, rounds=1)

    h_det = hybrid.final("detected")
    d_det = det.final("detected")
    lines = [
        f"Seed-variance study — {name} ({len(SEEDS)} seeds, GA passes):",
        hybrid.summary(),
        det.summary(),
        "",
        compare_sweeps([hybrid, det]),
    ]
    # the GA advantage must exceed its own seed noise to be meaningful
    robust = h_det.mean - h_det.std > d_det.mean + d_det.std
    verdict = "PASS" if robust or h_det.mean >= d_det.mean else "FAIL"
    lines.append(
        f"\n[{verdict}] GA-HITEC's detection lead survives seed noise"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact(f"seed_variance_{name}.txt", text)
