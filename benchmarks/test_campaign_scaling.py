"""Campaign scaling: wall clock vs worker count, drill and real ATPG.

Two measurements, both written to ``BENCH_campaign.json``:

* **drill mode**: every work item is replaced by a fixed-duration
  synthetic workload (``synthetic_item_seconds``), so the numbers isolate
  the orchestration layer — leases, heartbeats, journaling, merge — from
  ATPG cost *and* from how many cores the runner happens to have (the
  sleeps overlap even on one core).  A 4-worker campaign must clear 2x
  over 1 worker, always.
* **real ATPG**: s298 at per-fault granularity under the warm-fork pool
  with live knowledge broadcast — the configuration the tentpole exists
  for.  s27 (~0.3 s wall) is far too small to amortize fork cost; s298
  with ~100 per-fault items gives every worker a meaningful share.  The
  4-worker speedup is **gated at 2.5x when the host has ≥4 cores** (CI
  runners do); on smaller hosts the CPU-bound speedup is physically
  capped, so the number is recorded with the core count and gated by
  ``check_regression.py --campaign`` only when it is meaningful.

Per-phase (warm/fork/solve/merge) wall times for every worker count land
in the JSON, so a regression can be attributed — e.g. fork cost growing
with worker count means warm state stopped being inherited.

Results land in ``benchmarks/out/campaign_scaling.txt`` and the
machine-readable ``BENCH_campaign.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.campaign import CampaignRunner, CampaignSpec

from .conftest import write_artifact

WORKER_COUNTS = [1, 2, 4]

#: 4-worker speedup floors (see module docstring for when each applies).
DRILL_TARGET = 2.0
REAL_TARGET = 2.5

#: Drill campaign: 3 circuits x 4 items, each a fixed 0.25 s workload.
DRILL_SPEC = dict(
    circuits=("s27", "s298", "s344"),
    name="scaling-drill",
    seed=2,
    shard_size=3,
    fault_limit=12,
    synthetic_item_seconds=0.25,
)

#: Real-ATPG campaign: s298, per-fault items, broadcast on — the
#: warm-fork pool's target configuration.  passes/backtracks trimmed so
#: one worker finishes in tens of seconds while each fault still does
#: real deterministic + GA work.
REAL_SPEC = dict(
    circuits=("s298",),
    name="scaling-real",
    seed=2,
    shard_size=1,
    passes=1,
    backtracks=50,
    fault_limit=96,
    knowledge_broadcast=True,
)


def run_timed(spec_kwargs, journal, workers):
    spec = CampaignSpec(**spec_kwargs)
    start = time.perf_counter()
    result = CampaignRunner(spec, str(journal), workers=workers).run()
    return time.perf_counter() - start, result


def phase_dict(result):
    return {name: round(seconds, 4)
            for name, seconds in sorted(result.phase_times.items())}


def test_campaign_worker_scaling(tmp_path):
    cores = os.cpu_count() or 1

    drill = {}
    drill_items = None
    for workers in WORKER_COUNTS:
        seconds, result = run_timed(
            DRILL_SPEC, tmp_path / f"drill{workers}.jsonl", workers
        )
        drill[workers] = seconds
        drill_items = result.items_done
        assert result.items_failed == 0

    real = {}
    real_phases = {}
    real_coverage = {}
    real_items = None
    for workers in WORKER_COUNTS:
        seconds, result = run_timed(
            REAL_SPEC, tmp_path / f"real{workers}.jsonl", workers
        )
        real[workers] = seconds
        real_phases[workers] = phase_dict(result)
        real_coverage[workers] = result.fault_coverage
        real_items = result.items_done
        assert result.items_failed == 0
        # broadcast trades bit-equality for speed, but shared facts are
        # sound: coverage must not collapse when workers are added
        assert abs(result.fault_coverage - real_coverage[1]) <= 0.05

    drill_speedups = {w: drill[1] / drill[w] for w in WORKER_COUNTS}
    real_speedups = {w: real[1] / real[w] for w in WORKER_COUNTS}

    lines = [
        f"Campaign scaling — host cores: {cores}",
        f"drill: {drill_items} items x "
        f"{DRILL_SPEC['synthetic_item_seconds']} s over "
        f"{len(DRILL_SPEC['circuits'])} circuits",
    ]
    for workers in WORKER_COUNTS:
        lines.append(
            f"  {workers} worker(s): {drill[workers]:6.2f} s wall "
            f"({drill_speedups[workers]:4.2f}x)"
        )
    drill_verdict = "PASS" if drill_speedups[4] >= DRILL_TARGET else "FAIL"
    lines.append(
        f"  [{drill_verdict}] 4 workers are {drill_speedups[4]:.2f}x "
        f"faster than 1 (target: {DRILL_TARGET}x — orchestration "
        "overhead stays small)"
    )
    lines.append(
        f"real ATPG: s298, {real_items} per-fault items, warm fork + "
        "broadcast"
    )
    for workers in WORKER_COUNTS:
        phases = real_phases[workers]
        lines.append(
            f"  {workers} worker(s): {real[workers]:6.2f} s wall "
            f"({real_speedups[workers]:4.2f}x)  "
            f"warm {phases['warm_s']:.2f}  fork {phases['fork_s']:.2f}  "
            f"solve {phases['solve_s']:.2f}  merge {phases['merge_s']:.2f}"
        )
    if cores >= 4:
        real_verdict = "PASS" if real_speedups[4] >= REAL_TARGET else "FAIL"
        lines.append(
            f"  [{real_verdict}] 4 workers are {real_speedups[4]:.2f}x "
            f"faster than 1 (target: {REAL_TARGET}x)"
        )
    else:
        lines.append(
            f"  [SKIP] {real_speedups[4]:.2f}x at 4 workers — "
            f"{REAL_TARGET}x gate needs >=4 cores, host has {cores}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("campaign_scaling.txt", text)

    payload = {
        "schema": "repro-bench-campaign/v1",
        "cores": cores,
        "drill": {
            "circuits": list(DRILL_SPEC["circuits"]),
            "items": drill_items,
            "item_seconds": DRILL_SPEC["synthetic_item_seconds"],
            "wall_seconds": {str(w): drill[w] for w in WORKER_COUNTS},
            "speedup": {str(w): drill_speedups[w] for w in WORKER_COUNTS},
        },
        "real_atpg": {
            "circuits": list(REAL_SPEC["circuits"]),
            "items": real_items,
            "passes": REAL_SPEC["passes"],
            "backtracks": REAL_SPEC["backtracks"],
            "fault_limit": REAL_SPEC["fault_limit"],
            "broadcast": REAL_SPEC["knowledge_broadcast"],
            "wall_seconds": {str(w): real[w] for w in WORKER_COUNTS},
            "speedup": {str(w): real_speedups[w] for w in WORKER_COUNTS},
            "phase_seconds": {
                str(w): real_phases[w] for w in WORKER_COUNTS
            },
            "coverage": {
                str(w): round(real_coverage[w], 6) for w in WORKER_COUNTS
            },
        },
        "speedup_workers4": drill_speedups[4],
        "real_speedup_workers4": real_speedups[4],
    }
    bench_path = Path(__file__).parent.parent / "BENCH_campaign.json"
    try:
        # read-modify-write: the service load benchmark owns "service"
        existing = json.loads(bench_path.read_text(encoding="utf-8"))
        if "service" in existing:
            payload["service"] = existing["service"]
    except (OSError, json.JSONDecodeError):
        pass
    bench_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    assert drill_speedups[4] >= DRILL_TARGET, (
        f"orchestration overhead ate the speedup: {drill_speedups[4]:.2f}x"
    )
    if cores >= 4:
        assert real_speedups[4] >= REAL_TARGET, (
            f"real-ATPG 4-worker speedup {real_speedups[4]:.2f}x is below "
            f"the {REAL_TARGET}x floor on a {cores}-core host"
        )
