"""Campaign orchestration scaling: wall clock vs worker count.

Two measurements over a three-circuit campaign:

* **drill mode** (the gated headline): every work item is replaced by a
  fixed-duration synthetic workload (``synthetic_item_seconds``), so the
  numbers isolate the orchestration layer — dispatch, heartbeats,
  journaling, merge — from ATPG cost *and* from how many cores the runner
  happens to have.  A 4-worker campaign must clear 2x over 1 worker.
* **real ATPG** (reported, not gated): a small s27 campaign at 1 and 2
  workers.  On a single-core runner the CPU-bound speedup is physically
  capped at ~1x; the number is recorded alongside the core count so
  multi-core runs are interpretable.

Results land in ``benchmarks/out/campaign_scaling.txt`` and the
machine-readable ``BENCH_campaign.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.campaign import CampaignRunner, CampaignSpec

from .conftest import write_artifact

WORKER_COUNTS = [1, 2, 4]

#: Drill campaign: 3 circuits x 4 items, each a fixed 0.25 s workload.
DRILL_SPEC = dict(
    circuits=("s27", "s298", "s344"),
    name="scaling-drill",
    seed=2,
    shard_size=3,
    fault_limit=12,
    synthetic_item_seconds=0.25,
)

#: Real-ATPG campaign (small, ungated): full s27.
REAL_SPEC = dict(
    circuits=("s27",),
    name="scaling-real",
    seed=2,
    shard_size=8,
    passes=2,
)


def run_timed(spec_kwargs, journal, workers):
    spec = CampaignSpec(**spec_kwargs)
    start = time.perf_counter()
    result = CampaignRunner(spec, str(journal), workers=workers).run()
    return time.perf_counter() - start, result


def test_campaign_worker_scaling(tmp_path):
    drill = {}
    items = None
    for workers in WORKER_COUNTS:
        seconds, result = run_timed(
            DRILL_SPEC, tmp_path / f"drill{workers}.jsonl", workers
        )
        drill[workers] = seconds
        items = result.items_done
        assert result.items_failed == 0

    real = {}
    for workers in (1, 2):
        seconds, result = run_timed(
            REAL_SPEC, tmp_path / f"real{workers}.jsonl", workers
        )
        real[workers] = seconds
        assert result.fault_coverage == 1.0

    speedups = {w: drill[1] / drill[w] for w in WORKER_COUNTS}
    lines = [
        f"Campaign orchestration scaling — {items} drill items "
        f"({DRILL_SPEC['synthetic_item_seconds']} s each) over "
        f"{len(DRILL_SPEC['circuits'])} circuits, "
        f"host cores: {os.cpu_count()}:",
    ]
    for workers in WORKER_COUNTS:
        lines.append(
            f"  {workers} worker(s): {drill[workers]:6.2f} s wall "
            f"({speedups[workers]:4.2f}x)"
        )
    verdict = "PASS" if speedups[4] >= 2.0 else "FAIL"
    lines.append(
        f"  [{verdict}] 4 workers are {speedups[4]:.2f}x faster than 1 "
        "(target: 2x — orchestration overhead stays small)"
    )
    lines.append(
        f"  real ATPG (s27): 1 worker {real[1]:.2f} s, "
        f"2 workers {real[2]:.2f} s "
        f"({real[1] / real[2]:.2f}x; CPU-bound, core-count limited)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("campaign_scaling.txt", text)

    payload = {
        "schema": "repro-bench-campaign/v1",
        "cores": os.cpu_count(),
        "drill": {
            "circuits": list(DRILL_SPEC["circuits"]),
            "items": items,
            "item_seconds": DRILL_SPEC["synthetic_item_seconds"],
            "wall_seconds": {str(w): drill[w] for w in WORKER_COUNTS},
            "speedup": {str(w): speedups[w] for w in WORKER_COUNTS},
        },
        "real_atpg": {
            "circuits": list(REAL_SPEC["circuits"]),
            "wall_seconds": {str(w): real[w] for w in sorted(real)},
            "speedup_2_workers": real[1] / real[2],
        },
        "speedup_workers4": speedups[4],
    }
    Path(__file__).parent.parent.joinpath("BENCH_campaign.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    assert speedups[4] >= 2.0, (
        f"orchestration overhead ate the speedup: {speedups[4]:.2f}x"
    )
