"""Vec-column study: static compaction of generated test sets.

Table II/III's **Vec** column is a cost metric — tester time is test
length.  This benchmark measures how much sequence-level static
compaction shrinks each generator's output without losing a single
detection, quantifying the redundancy each strategy leaves behind
(sequences accepted early are often subsumed once the full set exists).
"""

from __future__ import annotations

import pytest

from repro.analysis.compaction import compact_test_set
from repro.analysis.coverage import evaluate_test_set
from repro.circuits import iscas89
from repro.faults.collapse import collapse_faults
from repro.hybrid import gahitec, gahitec_schedule

from .conftest import BACKTRACK_BASE, TIME_SCALE, write_artifact


@pytest.mark.parametrize("name", ["s27", "s298"])
def test_compaction_preserves_coverage(benchmark, name):
    circuit = iscas89(name)
    x = max(4, 4 * circuit.sequential_depth)

    def run():
        result = gahitec(iscas89(name), seed=1).run(
            gahitec_schedule(x=x, num_passes=2, time_scale=TIME_SCALE,
                             backtrack_base=BACKTRACK_BASE)
        )
        compacted = compact_test_set(
            iscas89(name), result.test_set, result.blocks
        )
        return result, compacted

    result, compacted = benchmark.pedantic(run, iterations=1, rounds=1)

    faults = collapse_faults(iscas89(name))
    before = evaluate_test_set(iscas89(name), result.test_set, faults)
    after = evaluate_test_set(iscas89(name), compacted.vectors, faults)
    assert len(after.detected) == len(before.detected), "coverage lost"

    lines = [
        f"Static compaction — {name} (GA-HITEC output):",
        f"  vectors : {compacted.original_vectors} -> "
        f"{compacted.compacted_vectors} ({compacted.reduction:.0%} removed)",
        f"  blocks  : {len(result.blocks)} -> {len(compacted.kept_blocks)}",
        f"  coverage: {len(before.detected)}/{len(faults)} preserved exactly",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact(f"compaction_{name}.txt", text)
