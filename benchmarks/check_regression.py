"""Gate a fresh benchmark JSON against a committed baseline.

Usage::

    python benchmarks/check_regression.py NEW_JSON BASELINE_JSON \
        [--min-ratio 0.8]
    python benchmarks/check_regression.py BENCH_campaign.json \
        [BASELINE_JSON] --campaign

Two modes.  The default gates ``BENCH_simulation.json``: the benchmark
job regenerates it by running the parallelism/backend ablation, then
calls this script with the fresh file and the baseline committed at the
repository root.  The gate fails (exit status 1) when:

* the fresh codegen-vs-event speedup at width 64 drops below
  ``--min-ratio`` of the baseline's — i.e. the generated kernels lost a
  meaningful fraction of their advantage;
* the numpy backend's distinct-shape grading speedup over codegen falls
  below ``--min-numpy-speedup`` (absolute, default 3.0) — the vectorized
  backend's headline claim;
* a warm kernel-cache pass reports any compilations — a warm start must
  skip compilation entirely;
* transition-model grading costs more than ``--max-transition-overhead``
  (absolute, default 3.0) times stuck-at grading on the codegen backend
  at identical batch shapes — the launch/capture injection planes must
  stay a constant-factor tax.

The numpy gates only apply when the fresh file carries the corresponding
keys (the benchmark ran with numpy installed); baselines produced before
those metrics existed are tolerated.  Raw per-width timings are printed
for context but not gated: absolute seconds vary with runner hardware,
while backend *ratios* are measured on the same machine in the same run
and are therefore stable.

``--campaign`` gates ``BENCH_campaign.json`` instead.  Its floors are
absolute, not baseline-relative, because speedups are already
self-normalized (4-worker wall over 1-worker wall, same machine, same
run):

* drill-mode 4-worker speedup must clear ``--min-drill-speedup``
  (default 2.0) — drill items are concurrent sleeps, so this holds on
  any host and isolates orchestration overhead;
* real-ATPG 4-worker speedup must clear ``--min-real-speedup`` (default
  2.5) — but only when the fresh file's recorded ``cores`` is at least
  4.  Real items are CPU-bound: on a smaller host the floor is
  physically unreachable and the gate prints SKIP instead of failing.

When the fresh file carries a ``service`` section (written by
``benchmarks/test_service_load.py``), the service-load floors apply too:

* at least ``--min-service-clients`` (default 100) concurrent
  submit+stream clients were driven;
* zero dropped SSE streams and zero client errors;
* the worst queued→started wait stayed within the bound the load
  harness recorded (``queue_wait_bound_s``).

``--policy`` gates ``BENCH_policy.json`` (written by
``benchmarks/test_policy.py``).  Its floors are absolute, measured
static-vs-policy on the same machine in the same run:

* every circuit's policy-campaign detected fault set is identical to the
  static campaign's (``coverage_equal``) — the mop-up safety net means a
  learned schedule may only move work, never drop coverage;
* the policy solve phase took at most ``--max-solve-ratio`` (default
  0.9) of the static solve phase — the ≥10%% wall-time saving the
  policy exists for;
* the policy engaged: non-zero ``atpg.policy.pass_skips``.

A baseline, when given, is printed for context only.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

#: Key of the gated headline metric inside ``BENCH_simulation.json``.
SPEEDUP_KEY = "codegen_speedup_width64"

#: Key of the numpy grading-workload metric (absent on numpy-less runs
#: and on baselines predating the numpy backend).
NUMPY_SPEEDUP_KEY = "numpy_grade_speedup_width256"

#: Keys of the persistent-cache compile counts.
COLD_COMPILES_KEY = "kernel_compiles_cold"
WARM_COMPILES_KEY = "kernel_compiles_warm"

#: Key of the transition-model grading overhead (codegen transition
#: grading over codegen stuck-at grading, same batch shapes; absent on
#: baselines predating the fault-model registry).
TRANSITION_OVERHEAD_KEY = "transition_grade_overhead_codegen"


def load(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare(
    new: Dict[str, Any],
    baseline: Dict[str, Any],
    min_ratio: float,
    min_numpy_speedup: float = 3.0,
    max_transition_overhead: float = 3.0,
) -> int:
    """Print the comparison; return a process exit status."""
    new_speedup = float(new[SPEEDUP_KEY])
    base_speedup = float(baseline[SPEEDUP_KEY])
    ratio = new_speedup / base_speedup if base_speedup else float("inf")
    failures = []

    print(f"benchmark regression gate ({new.get('circuit', '?')}):")
    for backend in new.get("backends", []):
        new_s = new.get("seconds", {}).get(backend, {})
        base_s = baseline.get("seconds", {}).get(backend, {})
        for width, seconds in new_s.items():
            base = base_s.get(width)
            delta = (
                f"{100.0 * (seconds / base - 1.0):+6.1f}%"
                if base
                else "   n/a"
            )
            print(
                f"  {backend:>8s} width {width:>4s}: "
                f"{seconds * 1e3:8.1f} ms (baseline delta {delta})"
            )
    print(
        f"  codegen speedup at width 64: {new_speedup:.2f}x "
        f"(baseline {base_speedup:.2f}x, ratio {ratio:.2f}, "
        f"floor {min_ratio:.2f})"
    )
    if ratio < min_ratio:
        failures.append(
            f"speedup ratio {ratio:.2f} fell below the {min_ratio:.2f}x "
            "floor — the codegen backend regressed relative to the event "
            "backend"
        )

    if NUMPY_SPEEDUP_KEY in new:
        numpy_speedup = float(new[NUMPY_SPEEDUP_KEY])
        print(
            f"  numpy grading speedup over codegen: {numpy_speedup:.2f}x "
            f"(floor {min_numpy_speedup:.2f})"
        )
        if numpy_speedup < min_numpy_speedup:
            failures.append(
                f"numpy grading speedup {numpy_speedup:.2f} fell below "
                f"the {min_numpy_speedup:.2f}x floor"
            )
    else:
        print("  numpy grading speedup: not measured (numpy absent)")

    if TRANSITION_OVERHEAD_KEY in new:
        overhead = float(new[TRANSITION_OVERHEAD_KEY])
        print(
            f"  transition grading overhead over stuck-at (codegen): "
            f"{overhead:.2f}x (ceiling {max_transition_overhead:.2f})"
        )
        if overhead > max_transition_overhead:
            failures.append(
                f"transition grading cost {overhead:.2f}x stuck-at, "
                f"above the {max_transition_overhead:.2f}x ceiling — "
                "launch/capture injection planes got too expensive"
            )
    else:
        print(
            "  transition grading overhead: not measured "
            "(file predates the fault-model registry)"
        )

    if WARM_COMPILES_KEY in new:
        cold = int(new.get(COLD_COMPILES_KEY, 0))
        warm = int(new[WARM_COMPILES_KEY])
        print(f"  kernel cache: {cold} cold compiles, {warm} warm")
        if warm != 0:
            failures.append(
                f"warm kernel-cache pass compiled {warm} kernels "
                "(expected 0)"
            )

    for failure in failures:
        print(f"  FAIL: {failure}")
    if failures:
        return 1
    print("  PASS")
    return 0


def check_service(new: Dict[str, Any], min_clients: int) -> list:
    """Service-load floors; returns the failure messages (maybe empty)."""
    service = new.get("service")
    if not service:
        print("  service load: not measured")
        return []
    clients = int(service.get("clients", 0))
    dropped = int(service.get("dropped_streams", 0))
    errors = int(service.get("client_errors", 0))
    wait_max = float(service.get("queue_wait_max_s", 0.0))
    wait_bound = float(service.get("queue_wait_bound_s", 0.0))
    failures = []
    print(
        f"  service load: {clients} clients in "
        f"{float(service.get('wall_seconds', 0.0)):.2f}s — "
        f"{dropped} dropped streams, {errors} client errors, "
        f"queue wait max {wait_max:.2f}s (bound {wait_bound:.0f}s)"
    )
    if clients < min_clients:
        failures.append(
            f"service load drove only {clients} clients "
            f"(floor {min_clients})"
        )
    if dropped != 0:
        failures.append(f"{dropped} SSE streams were dropped (expected 0)")
    if errors != 0:
        failures.append(f"{errors} service clients errored (expected 0)")
    if wait_bound and wait_max > wait_bound:
        failures.append(
            f"queue wait {wait_max:.2f}s exceeded the "
            f"{wait_bound:.0f}s bound — dispatch is wedging under load"
        )
    return failures


def compare_campaign(
    new: Dict[str, Any],
    baseline: Dict[str, Any] | None,
    min_drill_speedup: float,
    min_real_speedup: float,
    min_service_clients: int = 100,
) -> int:
    """Gate ``BENCH_campaign.json``; return a process exit status."""
    cores = int(new.get("cores", 0))
    drill = float(new["speedup_workers4"])
    real = new.get("real_atpg", {})
    real_speedup = float(real.get("speedup", {}).get("4", 0.0))
    failures = []

    print(f"campaign scaling gate (recorded on a {cores}-core host):")
    print(
        f"  drill 4-worker speedup: {drill:.2f}x "
        f"(floor {min_drill_speedup:.2f})"
    )
    if baseline is not None and "speedup_workers4" in baseline:
        print(
            f"    baseline: {float(baseline['speedup_workers4']):.2f}x "
            "(informational)"
        )
    if drill < min_drill_speedup:
        failures.append(
            f"drill speedup {drill:.2f}x fell below the "
            f"{min_drill_speedup:.2f}x floor — orchestration overhead "
            "(leases, journal, heartbeats) grew"
        )

    phases = real.get("phase_seconds", {}).get("4", {})
    if phases:
        print(
            "  real-ATPG 4-worker phases: "
            + "  ".join(f"{k} {v:.2f}s" for k, v in sorted(phases.items()))
        )
    if cores >= 4:
        print(
            f"  real-ATPG 4-worker speedup: {real_speedup:.2f}x "
            f"(floor {min_real_speedup:.2f})"
        )
        if real_speedup < min_real_speedup:
            failures.append(
                f"real-ATPG speedup {real_speedup:.2f}x fell below the "
                f"{min_real_speedup:.2f}x floor — the warm-fork pool "
                "stopped paying for itself"
            )
    else:
        print(
            f"  real-ATPG 4-worker speedup: {real_speedup:.2f}x "
            f"(SKIP: floor needs >=4 cores, file was recorded on {cores})"
        )

    failures.extend(check_service(new, min_service_clients))

    for failure in failures:
        print(f"  FAIL: {failure}")
    if failures:
        return 1
    print("  PASS")
    return 0


def compare_policy(new: Dict[str, Any], max_solve_ratio: float) -> int:
    """Gate ``BENCH_policy.json``; return a process exit status."""
    ratio = float(new["solve_ratio"])
    counters = new.get("policy_counters", {})
    skips = int(counters.get("atpg.policy.pass_skips", 0))
    failures = []

    print("policy schedule gate:")
    for name, row in sorted(new.get("circuits", {}).items()):
        equal = bool(row.get("detected_equal"))
        print(
            f"  {name}: static coverage "
            f"{float(row.get('static_coverage', 0.0)):.3f}, policy "
            f"{float(row.get('policy_coverage', 0.0)):.3f}, detected "
            f"sets {'identical' if equal else 'DIFFER'}"
        )
        if not equal:
            failures.append(
                f"{name}: the policy campaign detected a different fault "
                "set than the static schedule — the mop-up safety net is "
                "broken"
            )
    print(
        f"  solve wall: static {float(new['solve_seconds_static']):.2f} s, "
        f"policy {float(new['solve_seconds_policy']):.2f} s — ratio "
        f"{ratio:.3f} (ceiling {max_solve_ratio:.2f})"
    )
    if ratio > max_solve_ratio:
        failures.append(
            f"policy solve ratio {ratio:.3f} exceeded the "
            f"{max_solve_ratio:.2f} ceiling — the learned schedule "
            "stopped paying for itself"
        )
    print(
        f"  policy activity: {skips} pass skips, "
        f"{int(counters.get('atpg.policy.deferred', 0))} deferrals, "
        f"{int(counters.get('atpg.policy.mispredictions', 0))} "
        "mispredictions"
    )
    if skips == 0:
        failures.append(
            "the policy never skipped a pass — it was inert, so the "
            "wall-time ratio measures nothing"
        )

    for failure in failures:
        print(f"  FAIL: {failure}")
    if failures:
        return 1
    print("  PASS")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new", help="freshly generated benchmark JSON")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="committed baseline JSON (required without --campaign)",
    )
    parser.add_argument(
        "--campaign",
        action="store_true",
        help="gate BENCH_campaign.json with absolute speedup floors "
        "instead of BENCH_simulation.json against a baseline",
    )
    parser.add_argument(
        "--policy",
        action="store_true",
        help="gate BENCH_policy.json: identical detected sets and a "
        "solve wall-time ratio at or below --max-solve-ratio",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.8,
        help="minimum new/baseline speedup ratio (default 0.8)",
    )
    parser.add_argument(
        "--min-numpy-speedup",
        type=float,
        default=3.0,
        help="minimum numpy-over-codegen grading speedup (default 3.0)",
    )
    parser.add_argument(
        "--max-transition-overhead",
        type=float,
        default=3.0,
        help="maximum transition/stuck-at codegen grading cost ratio "
        "(default 3.0)",
    )
    parser.add_argument(
        "--min-drill-speedup",
        type=float,
        default=2.0,
        help="--campaign: minimum drill-mode 4-worker speedup "
        "(default 2.0)",
    )
    parser.add_argument(
        "--min-real-speedup",
        type=float,
        default=2.5,
        help="--campaign: minimum real-ATPG 4-worker speedup, gated "
        "only when the file's cores >= 4 (default 2.5)",
    )
    parser.add_argument(
        "--min-service-clients",
        type=int,
        default=100,
        help="--campaign: minimum concurrent service-load clients, "
        "gated only when the file has a 'service' section (default 100)",
    )
    parser.add_argument(
        "--max-solve-ratio",
        type=float,
        default=0.9,
        help="--policy: maximum policy/static solve wall-time ratio "
        "(default 0.9 — at least a 10%% saving)",
    )
    args = parser.parse_args(argv)
    if args.policy:
        return compare_policy(load(args.new), args.max_solve_ratio)
    if args.campaign:
        return compare_campaign(
            load(args.new),
            load(args.baseline) if args.baseline else None,
            args.min_drill_speedup,
            args.min_real_speedup,
            args.min_service_clients,
        )
    if args.baseline is None:
        parser.error("baseline JSON is required without --campaign")
    return compare(
        load(args.new),
        load(args.baseline),
        args.min_ratio,
        args.min_numpy_speedup,
        args.max_transition_overhead,
    )


if __name__ == "__main__":
    sys.exit(main())
