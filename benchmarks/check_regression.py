"""Gate a fresh ``BENCH_simulation.json`` against a committed baseline.

Usage::

    python benchmarks/check_regression.py NEW_JSON BASELINE_JSON \
        [--min-ratio 0.8]

The benchmark job regenerates ``BENCH_simulation.json`` by running the
parallelism/backend ablation, then calls this script with the fresh file
and the baseline committed at the repository root.  The gate fails (exit
status 1) when:

* the fresh codegen-vs-event speedup at width 64 drops below
  ``--min-ratio`` of the baseline's — i.e. the generated kernels lost a
  meaningful fraction of their advantage;
* the numpy backend's distinct-shape grading speedup over codegen falls
  below ``--min-numpy-speedup`` (absolute, default 3.0) — the vectorized
  backend's headline claim;
* a warm kernel-cache pass reports any compilations — a warm start must
  skip compilation entirely.

The numpy gates only apply when the fresh file carries the corresponding
keys (the benchmark ran with numpy installed); baselines produced before
those metrics existed are tolerated.  Raw per-width timings are printed
for context but not gated: absolute seconds vary with runner hardware,
while backend *ratios* are measured on the same machine in the same run
and are therefore stable.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

#: Key of the gated headline metric inside ``BENCH_simulation.json``.
SPEEDUP_KEY = "codegen_speedup_width64"

#: Key of the numpy grading-workload metric (absent on numpy-less runs
#: and on baselines predating the numpy backend).
NUMPY_SPEEDUP_KEY = "numpy_grade_speedup_width256"

#: Keys of the persistent-cache compile counts.
COLD_COMPILES_KEY = "kernel_compiles_cold"
WARM_COMPILES_KEY = "kernel_compiles_warm"


def load(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare(
    new: Dict[str, Any],
    baseline: Dict[str, Any],
    min_ratio: float,
    min_numpy_speedup: float = 3.0,
) -> int:
    """Print the comparison; return a process exit status."""
    new_speedup = float(new[SPEEDUP_KEY])
    base_speedup = float(baseline[SPEEDUP_KEY])
    ratio = new_speedup / base_speedup if base_speedup else float("inf")
    failures = []

    print(f"benchmark regression gate ({new.get('circuit', '?')}):")
    for backend in new.get("backends", []):
        new_s = new.get("seconds", {}).get(backend, {})
        base_s = baseline.get("seconds", {}).get(backend, {})
        for width, seconds in new_s.items():
            base = base_s.get(width)
            delta = (
                f"{100.0 * (seconds / base - 1.0):+6.1f}%"
                if base
                else "   n/a"
            )
            print(
                f"  {backend:>8s} width {width:>4s}: "
                f"{seconds * 1e3:8.1f} ms (baseline delta {delta})"
            )
    print(
        f"  codegen speedup at width 64: {new_speedup:.2f}x "
        f"(baseline {base_speedup:.2f}x, ratio {ratio:.2f}, "
        f"floor {min_ratio:.2f})"
    )
    if ratio < min_ratio:
        failures.append(
            f"speedup ratio {ratio:.2f} fell below the {min_ratio:.2f}x "
            "floor — the codegen backend regressed relative to the event "
            "backend"
        )

    if NUMPY_SPEEDUP_KEY in new:
        numpy_speedup = float(new[NUMPY_SPEEDUP_KEY])
        print(
            f"  numpy grading speedup over codegen: {numpy_speedup:.2f}x "
            f"(floor {min_numpy_speedup:.2f})"
        )
        if numpy_speedup < min_numpy_speedup:
            failures.append(
                f"numpy grading speedup {numpy_speedup:.2f} fell below "
                f"the {min_numpy_speedup:.2f}x floor"
            )
    else:
        print("  numpy grading speedup: not measured (numpy absent)")

    if WARM_COMPILES_KEY in new:
        cold = int(new.get(COLD_COMPILES_KEY, 0))
        warm = int(new[WARM_COMPILES_KEY])
        print(f"  kernel cache: {cold} cold compiles, {warm} warm")
        if warm != 0:
            failures.append(
                f"warm kernel-cache pass compiled {warm} kernels "
                "(expected 0)"
            )

    for failure in failures:
        print(f"  FAIL: {failure}")
    if failures:
        return 1
    print("  PASS")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new", help="freshly generated BENCH_simulation.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.8,
        help="minimum new/baseline speedup ratio (default 0.8)",
    )
    parser.add_argument(
        "--min-numpy-speedup",
        type=float,
        default=3.0,
        help="minimum numpy-over-codegen grading speedup (default 3.0)",
    )
    args = parser.parse_args(argv)
    return compare(
        load(args.new),
        load(args.baseline),
        args.min_ratio,
        args.min_numpy_speedup,
    )


if __name__ == "__main__":
    sys.exit(main())
