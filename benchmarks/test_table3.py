"""Table III: GA-HITEC versus HITEC on the synthesised circuits.

The paper's four high-level designs — the Am2910 microprogram sequencer,
the repeated-subtraction divider, the Booth multiplier, and the parallel
DSP controller — synthesised by :mod:`repro.rtl` and run through both
generators.  The paper's headline for this table: GA-HITEC achieved both
higher coverage *and* lower run time on all four circuits.

Default widths are reduced (8-bit datapaths, 8-address sequencer) to keep
the pure-Python run in minutes; set ``REPRO_FULL=1`` for the paper's full
widths (16-bit datapaths, 12-bit sequencer).
"""

from __future__ import annotations

import pytest

from repro.analysis import TableEntry, render_table, shape_checks
from repro.circuits import am2910, div16, mult16, pcont2
from repro.hybrid import gahitec, gahitec_schedule, hitec_baseline, hitec_schedule

from .conftest import BACKTRACK_BASE, FULL, TIME_SCALE, write_artifact

#: Paper Table III final rows (Det, Vec, Unt, of Total) for context.
PAPER_FINAL = {
    "am2910": (2190, 1214, 173, 2391),
    "div": (1741, 359, 136, 2147),
    "mult": (1633, 421, 23, 1708),
    "pcont2": (6757, 208, 2770, 11300),
}


def _builders():
    if FULL:
        return {
            "am2910": lambda: am2910(width=12),
            "div": lambda: div16(width=16),
            "mult": lambda: mult16(width=16),
            "pcont2": lambda: pcont2(channels=8, counter_width=8),
        }
    return {
        "am2910": lambda: am2910(width=6),
        "div": lambda: div16(width=6),
        "mult": lambda: mult16(width=6),
        "pcont2": lambda: pcont2(channels=4, counter_width=4),
    }


_entries = []

#: The paper used sequence lengths 24 and 48 for these circuits; scale to
#: the reduced widths by using 24 in pass 1 (x = 24 at full size).
X_SEQ = 24 if FULL else 12


@pytest.mark.parametrize("name", list(_builders()))
def test_table3_circuit(benchmark, name):
    build = _builders()[name]

    def run_both():
        left = gahitec(build(), seed=1).run(
            gahitec_schedule(
                x=X_SEQ, num_passes=3,
                time_scale=TIME_SCALE, backtrack_base=BACKTRACK_BASE,
            )
        )
        right = hitec_baseline(build(), seed=1).run(
            hitec_schedule(
                num_passes=3,
                time_scale=TIME_SCALE, backtrack_base=BACKTRACK_BASE,
            )
        )
        return left, right

    left, right = benchmark.pedantic(run_both, iterations=1, rounds=1)
    circuit = build()
    _entries.append(
        TableEntry(
            circuit=name,
            seq_depth=circuit.sequential_depth,
            total_faults=left.total_faults,
            left=left,
            right=right,
        )
    )
    assert left.passes[-1].detected > 0
    if len(_entries) == len(_builders()):
        _render()


def _render():
    lines = [render_table(_entries), ""]
    lines += shape_checks(_entries)
    lines.append("")
    lines.append("Paper's final rows (full-width originals, 1995 hardware):")
    for e in _entries:
        paper = PAPER_FINAL.get(e.circuit)
        if paper:
            lines.append(
                f"  {e.circuit:<8s} paper Det={paper[0]}/{paper[3]} "
                f"Vec={paper[1]} Unt={paper[2]}  | here "
                f"Det={e.left.passes[-1].detected}/{e.total_faults} "
                f"Vec={e.left.passes[-1].vectors} "
                f"Unt={e.left.passes[-1].untestable}"
            )
    # the paper's headline claim for Table III
    wins = sum(
        1 for e in _entries
        if e.left.passes[-1].detected >= e.right.passes[-1].detected
    )
    lines.append(
        f"\nGA-HITEC coverage >= HITEC on {wins}/{len(_entries)} circuits "
        "(paper: all four)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("table3.txt", text)
