"""Section I comparison: GA-only versus deterministic versus hybrid.

The paper's motivation: *"A comparison of results for deterministic and
GA-based test generators shows that each approach has its own merits …
Untestable faults can be identified by using deterministic algorithms, but
significant speedups can be obtained with the genetic approach.  Hence,
combining the two approaches could be beneficial."*

This benchmark runs all three generators under the same budget and
reports detections, untestability proofs, and ATPG efficiency
(classified fraction) — the hybrid should lead on efficiency.
"""

from __future__ import annotations

import pytest

from repro.analysis.coverage import atpg_efficiency
from repro.circuits import iscas89
from repro.ga.atpg import GAAtpgParams, GASimulationTestGenerator
from repro.hybrid import gahitec, gahitec_schedule, hitec_baseline, hitec_schedule

from .conftest import BACKTRACK_BASE, TIME_SCALE, write_artifact

#: Seconds of wall clock each generator gets (matched across generators).
BUDGET_S = 60.0 * TIME_SCALE / 0.01


@pytest.mark.parametrize("name", ["s298"])
def test_three_way_comparison(benchmark, name):
    circuit = iscas89(name)
    x = 4 * circuit.sequential_depth

    def run_all():
        hybrid = gahitec(iscas89(name), seed=1).run(
            gahitec_schedule(x=x, num_passes=3, time_scale=TIME_SCALE,
                             backtrack_base=BACKTRACK_BASE)
        )
        det = hitec_baseline(iscas89(name), seed=1).run(
            hitec_schedule(num_passes=3, time_scale=TIME_SCALE,
                           backtrack_base=BACKTRACK_BASE)
        )
        ga_only = GASimulationTestGenerator(iscas89(name), seed=1).run(
            GAAtpgParams(seq_len=x), time_limit=BUDGET_S
        )
        return hybrid, det, ga_only

    hybrid, det, ga_only = benchmark.pedantic(run_all, iterations=1, rounds=1)

    rows = []
    for run in (hybrid, det, ga_only):
        eff = atpg_efficiency(
            len(run.detected), len(run.untestable), run.total_faults
        )
        rows.append(
            f"  {run.generator:<9s} det {len(run.detected):>4d}  "
            f"unt {len(run.untestable):>4d}  vec {len(run.test_set):>4d}  "
            f"time {run.passes[-1].time_s:7.1f}s  efficiency {eff:6.1%}"
        )
        assert run.total_faults == hybrid.total_faults

    hybrid_eff = atpg_efficiency(
        len(hybrid.detected), len(hybrid.untestable), hybrid.total_faults
    )
    others = max(
        atpg_efficiency(len(r.detected), len(r.untestable), r.total_faults)
        for r in (det, ga_only)
    )
    verdict = "PASS" if hybrid_eff >= others - 0.02 else "FAIL"
    lines = [f"Three-way comparison — {name} (equal budgets):"] + rows + [
        f"  [{verdict}] hybrid ATPG efficiency leads or ties "
        "(the paper's central claim)"
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact(f"intro_comparison_{name}.txt", text)
