"""Section IV-A ablation: the 9/10–1/10 fitness weighting versus ½–½.

The paper: *"Experiments on several circuits confirmed that the weights
chosen work better than equal weights of 1/2"* — a heavy weighting of the
good-circuit goal keeps the strings evolving steadily in one direction
instead of oscillating between the good and faulty goals.

This benchmark harvests real justification tasks from ATPG runs on two
circuits and compares GA success counts under both weightings across
several seeds, reporting the paper-style verdict.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits import iscas89
from repro.ga import GAJustifyParams, GAStateJustifier

from ._tasks import harvest_tasks
from .conftest import write_artifact

WEIGHTINGS = {
    "paper (0.9 / 0.1)": (0.9, 0.1),
    "equal (0.5 / 0.5)": (0.5, 0.5),
}

SEEDS = [0, 1, 2]
CIRCUITS = ["s298", "s344"]


def run_weighting(circuit, tasks, weights, seq_len) -> int:
    good_w, faulty_w = weights
    successes = 0
    for seed in SEEDS:
        justifier = GAStateJustifier(circuit, rng=random.Random(seed))
        for task in tasks:
            params = GAJustifyParams(
                seq_len=seq_len,
                population_size=64,
                generations=4,
                good_weight=good_w,
                faulty_weight=faulty_w,
            )
            res = justifier.justify(
                task.required_dict, params, fault=task.fault
            )
            successes += int(res.success)
    return successes


@pytest.mark.parametrize("name", CIRCUITS)
def test_fitness_weight_ablation(benchmark, name):
    circuit = iscas89(name)
    tasks = harvest_tasks(circuit, max_tasks=25)
    assert tasks, "no justification tasks harvested"
    seq_len = 4 * circuit.sequential_depth

    results = {}

    def run_all():
        for label, weights in WEIGHTINGS.items():
            results[label] = run_weighting(circuit, tasks, weights, seq_len)
        return results

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    attempts = len(tasks) * len(SEEDS)
    lines = [f"Fitness-weight ablation — {name} "
             f"({len(tasks)} tasks x {len(SEEDS)} seeds):"]
    for label, wins in results.items():
        lines.append(f"  {label:<18s} {wins:>4d}/{attempts} justified")
    paper_wins = results["paper (0.9 / 0.1)"]
    equal_wins = results["equal (0.5 / 0.5)"]
    verdict = "PASS" if paper_wins >= equal_wins else "FAIL"
    lines.append(
        f"  [{verdict}] paper weighting >= equal weighting "
        "(paper: chosen weights work better)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact(f"ablation_fitness_{name}.txt", text)
