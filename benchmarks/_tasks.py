"""Shared helper: harvest real state-justification tasks from ATPG runs.

The GA ablations need realistic required states — not synthetic ones — so
we run the deterministic excitation/propagation phase for each fault of a
circuit and keep the frame-0 state requirement each solution produces,
exactly the input the GA justifier receives inside GA-HITEC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.atpg.podem import Limits, PodemEngine
from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.simulation.compiled import compile_circuit


@dataclass(frozen=True)
class JustificationTask:
    """One (fault, required frame-0 state) pair from a real ATPG run."""

    fault: Fault
    required: "tuple[tuple[str, int], ...]"

    @property
    def required_dict(self) -> Dict[str, int]:
        return dict(self.required)


def harvest_tasks(
    circuit: Circuit,
    max_tasks: int = 40,
    max_frames: int = 6,
    backtracks: int = 200,
) -> List[JustificationTask]:
    """Collect non-trivial justification tasks for a circuit."""
    cc = compile_circuit(circuit)
    tasks: List[JustificationTask] = []
    seen = set()
    for fault in collapse_faults(circuit):
        if len(tasks) >= max_tasks:
            break
        engine = PodemEngine(cc, fault=fault, num_frames=max_frames)
        sol = engine.run(Limits(max_backtracks=backtracks))
        if sol is None or not sol.required_state:
            continue
        key = (fault, tuple(sorted(sol.required_state.items())))
        if key in seen:
            continue
        seen.add(key)
        tasks.append(
            JustificationTask(fault, tuple(sorted(sol.required_state.items())))
        )
    return tasks
