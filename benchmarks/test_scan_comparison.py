"""Extension study: what full scan does to the problem GA-HITEC solves.

GA-HITEC attacks the hardest part of sequential ATPG — state
justification.  Scan design removes that problem structurally: with every
flip-flop on a shift chain, any state is reachable in ``chain length``
clocks.  This study runs the *same* hybrid generator on a circuit and on
its full-scan version and reports coverage, effort, and the hardware cost,
quantifying the trade-off that eventually made sequential ATPG a niche
(the historical context in which the paper sits).
"""

from __future__ import annotations

import pytest

from repro.atpg.scan_atpg import ScanAtpgParams, ScanTestGenerator
from repro.circuit.scan import insert_scan
from repro.circuits import iscas89
from repro.hybrid import gahitec, gahitec_schedule

from .conftest import BACKTRACK_BASE, TIME_SCALE, write_artifact


@pytest.mark.parametrize("name", ["s298"])
def test_scan_vs_sequential(benchmark, name):
    original = iscas89(name)
    scanned, chain = insert_scan(iscas89(name))

    def run_both():
        seq = gahitec(iscas89(name), seed=1).run(
            gahitec_schedule(
                x=4 * original.sequential_depth, num_passes=2,
                time_scale=TIME_SCALE, backtrack_base=BACKTRACK_BASE,
            )
        )
        scan = ScanTestGenerator(iscas89(name)).run(
            ScanAtpgParams(max_backtracks=BACKTRACK_BASE * 16)
        )
        return seq, scan

    seq, scan = benchmark.pedantic(run_both, iterations=1, rounds=1)

    lines = [
        f"Full-scan extension study — {name}:",
        f"  sequential : {len(seq.detected):>4d}/{seq.total_faults} detected, "
        f"{len(seq.test_set):>4d} vectors, {seq.passes[-1].time_s:6.1f}s",
        f"  full scan  : {len(scan.detected):>4d}/{scan.total_faults} detected, "
        f"{len(scan.test_set):>4d} vectors, {scan.passes[-1].time_s:6.1f}s",
        f"  hardware   : {original.num_gates} -> {scanned.num_gates} gates "
        f"(+{scanned.num_gates - original.num_gates} for "
        f"{chain.length} scan cells)",
    ]
    seq_cov = len(seq.detected) / seq.total_faults
    scan_cov = len(scan.detected) / scan.total_faults
    verdict = "PASS" if scan_cov >= seq_cov else "FAIL"
    lines.append(
        f"  [{verdict}] scan coverage ({scan_cov:.1%}) >= sequential "
        f"({seq_cov:.1%}): scan removes the justification bottleneck"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact(f"scan_comparison_{name}.txt", text)
