"""State-knowledge reuse: hit rates, justification-call reduction, parity.

Three fixed-seed, wall-clock-free (``time_scale=None``) GA-HITEC runs per
circuit:

* **off** — the knowledge store disabled (the pre-knowledge engine);
* **cold** — an empty store that fills as the run learns;
* **warm** — the cold run's store preloaded, measuring cross-run reuse.

Gated properties (all deterministic under the fixed seed):

* coverage with knowledge (cold and warm) is never below coverage
  without it — reuse is an accelerator, not a result-changer;
* the warm run registers knowledge activity (lookup hits or GA seeding);
* the warm runs issue no more justifier calls than the knowledge-off
  runs in aggregate — stored facts replace repeated searches.

Results land in ``benchmarks/out/knowledge_reuse.txt`` and the
machine-readable ``BENCH_knowledge.json`` at the repository root.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.atpg.context import AtpgContext
from repro.circuits import iscas89
from repro.hybrid.driver import HybridTestGenerator
from repro.hybrid.passes import gahitec_schedule
from repro.knowledge import StateKnowledge
from repro.telemetry.metrics import TelemetryRecorder

from .conftest import BACKTRACK_BASE, write_artifact

CIRCUITS = ["s344", "s386"]
SEED = 7
FAULT_LIMIT = 8


def run_once(circuit_name, knowledge):
    circ = iscas89(circuit_name)
    faults = AtpgContext(circ).faults[:FAULT_LIMIT]
    # wall-clock-free, so every budget must be structural: a shallow
    # justify depth and small populations keep the deterministic pass
    # from exploring the exponential reverse-time tail
    schedule = gahitec_schedule(
        max(2, 2 * circ.sequential_depth),
        time_scale=None,
        backtrack_base=min(8, BACKTRACK_BASE),
        justify_depth=3,
        population_scale=16,
    )
    tel = TelemetryRecorder()
    driver = HybridTestGenerator(
        circ, seed=SEED, faults=faults, telemetry=tel, knowledge=knowledge
    )
    result = driver.run(schedule)
    return {
        "coverage": result.fault_coverage,
        "justify_calls": tel.registry.counters.get("atpg.justify_calls", 0),
        "stats": dict(result.knowledge_stats),
        "store": driver.knowledge,
    }


def test_knowledge_reuse_gate():
    rows = {}
    for name in CIRCUITS:
        off = run_once(name, knowledge=False)
        cold = run_once(name, knowledge=True)
        warm_store = StateKnowledge.from_dict(cold["store"].to_dict())
        warm = run_once(name, knowledge=warm_store)
        rows[name] = {"off": off, "cold": cold, "warm": warm}

    def total(mode, key):
        return sum(rows[n][mode][key] for n in CIRCUITS)

    def hits(stats):
        return (
            stats.get("justified_hits", 0)
            + stats.get("unjustifiable_hits", 0)
            + stats.get("podem_pruned", 0)
            + stats.get("ga_seeded", 0)
        )

    lines = [
        f"State-knowledge reuse — seed {SEED}, "
        f"{FAULT_LIMIT} faults/circuit, no wall-clock limits:",
        f"  {'circuit':<8s} {'mode':<5s} {'coverage':>8s} "
        f"{'justify':>8s} {'hits':>6s} {'records':>8s}",
    ]
    for name in CIRCUITS:
        for mode in ("off", "cold", "warm"):
            row = rows[name][mode]
            lines.append(
                f"  {name:<8s} {mode:<5s} {row['coverage']:8.3f} "
                f"{row['justify_calls']:8d} {hits(row['stats']):6d} "
                f"{row['stats'].get('records', 0):8d}"
            )
    reduction = total("off", "justify_calls") - total("warm", "justify_calls")
    lines.append(
        f"  warm runs issue {reduction} fewer justifier calls than "
        f"knowledge-off ({total('warm', 'justify_calls')} vs "
        f"{total('off', 'justify_calls')})"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("knowledge_reuse.txt", text)

    payload = {
        "schema": "repro-bench-knowledge/v1",
        "seed": SEED,
        "fault_limit": FAULT_LIMIT,
        "circuits": {
            name: {
                mode: {
                    "coverage": rows[name][mode]["coverage"],
                    "justify_calls": rows[name][mode]["justify_calls"],
                    "knowledge_stats": rows[name][mode]["stats"],
                }
                for mode in ("off", "cold", "warm")
            }
            for name in CIRCUITS
        },
        "justify_calls_off": total("off", "justify_calls"),
        "justify_calls_warm": total("warm", "justify_calls"),
        "justify_call_reduction": reduction,
        "warm_hits": sum(hits(rows[n]["warm"]["stats"]) for n in CIRCUITS),
    }
    Path(__file__).parent.parent.joinpath("BENCH_knowledge.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    for name in CIRCUITS:
        assert rows[name]["cold"]["coverage"] >= rows[name]["off"]["coverage"], (
            f"{name}: an empty knowledge store lost coverage"
        )
        assert rows[name]["warm"]["coverage"] >= rows[name]["off"]["coverage"], (
            f"{name}: preloaded knowledge lost coverage"
        )
    assert payload["warm_hits"] > 0, "preloaded knowledge never registered"
    assert payload["justify_calls_warm"] <= payload["justify_calls_off"], (
        "knowledge reuse increased justifier work"
    )
