"""Table I ablation: the pass-1 → pass-2 GA search-space expansion.

The paper doubles everything between the first two passes — population 64
to 128, 4 to 8 generations, sequence length x/2 to x — precisely so pass 2
justifies states pass 1 could not.  This benchmark measures GA success on
harvested justification tasks under the pass-1 configuration, the pass-2
configuration, and a deliberately starved configuration, confirming the
escalation is worth its cost.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits import iscas89
from repro.ga import GAJustifyParams, GAStateJustifier

from ._tasks import harvest_tasks
from .conftest import write_artifact

SEEDS = [0, 1, 2]


def configurations(depth: int):
    x = 4 * depth
    return {
        "starved (pop 16, 2 gen, x/4)": GAJustifyParams(
            seq_len=max(1, x // 4), population_size=16, generations=2
        ),
        "pass 1  (pop 64, 4 gen, x/2)": GAJustifyParams(
            seq_len=max(1, x // 2), population_size=64, generations=4
        ),
        "pass 2  (pop 128, 8 gen, x)": GAJustifyParams(
            seq_len=x, population_size=128, generations=8
        ),
    }


@pytest.mark.parametrize("name", ["s298"])
def test_ga_parameter_escalation(benchmark, name):
    circuit = iscas89(name)
    tasks = harvest_tasks(circuit, max_tasks=25)
    assert tasks
    configs = configurations(circuit.sequential_depth)
    results = {}

    def run_all():
        for label, params in configs.items():
            wins = 0
            for seed in SEEDS:
                justifier = GAStateJustifier(circuit, rng=random.Random(seed))
                for task in tasks:
                    res = justifier.justify(
                        task.required_dict, params, fault=task.fault
                    )
                    wins += int(res.success)
            results[label] = wins
        return results

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    attempts = len(tasks) * len(SEEDS)
    lines = [f"GA parameter escalation — {name} "
             f"({len(tasks)} tasks x {len(SEEDS)} seeds):"]
    for label, wins in results.items():
        lines.append(f"  {label:<30s} {wins:>4d}/{attempts} justified")
    ordered = list(results.values())
    verdict = "PASS" if ordered[0] <= ordered[1] <= ordered[2] + 2 else "FAIL"
    lines.append(
        f"  [{verdict}] success is monotone in the search-space expansion"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact(f"ablation_ga_params_{name}.txt", text)
