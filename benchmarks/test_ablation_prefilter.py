"""Section VI ablation: untestable-fault prefiltering.

The paper: *"GA-HITEC wastes time targeting untestable faults in the
first two passes, a result especially apparent for circuit s386.  If these
untestable faults can be filtered out in advance, significant speedups can
be obtained."*

The prefilter runs the deterministic excitation/propagation phase alone
(a justifier that always refuses), which proves combinational redundancy
without any GA work; proven-untestable faults never reach the GA passes.
"""

from __future__ import annotations

import time

import pytest

from repro.circuits import iscas89
from repro.hybrid import gahitec, gahitec_schedule

from .conftest import BACKTRACK_BASE, TIME_SCALE, write_artifact


@pytest.mark.parametrize("name", ["s386"])
def test_untestable_prefilter_speedup(benchmark, name):
    schedule = gahitec_schedule(
        x=4 * iscas89(name).sequential_depth or 8,
        num_passes=2,  # the GA passes, where the waste occurs
        time_scale=TIME_SCALE,
        backtrack_base=BACKTRACK_BASE,
    )

    def run_both():
        t0 = time.monotonic()
        plain = gahitec(iscas89(name), seed=1).run(schedule)
        plain_time = time.monotonic() - t0

        t0 = time.monotonic()
        filtered_driver = gahitec(iscas89(name), seed=1)
        proven = filtered_driver.prefilter_untestable()
        filtered = filtered_driver.run(schedule)
        filtered_time = time.monotonic() - t0
        return plain, plain_time, filtered, filtered_time, proven

    plain, plain_time, filtered, filtered_time, proven = benchmark.pedantic(
        run_both, iterations=1, rounds=1
    )

    # the prefilter must not lose detections
    assert len(filtered.detected) >= len(plain.detected) - 2

    plain_classified = len(plain.detected) + len(plain.untestable)
    filt_classified = (
        len(filtered.detected) + len(filtered.untestable) + len(proven)
    )
    lines = [
        f"Untestable-fault prefiltering — {name} (GA passes only):",
        f"  without prefilter: {len(plain.detected)} detected, "
        f"{len(plain.untestable)} proven, {plain_time:6.1f}s",
        f"  with prefilter   : {len(filtered.detected)} detected, "
        f"{len(filtered.untestable) + len(proven)} proven, "
        f"{filtered_time:6.1f}s ({len(proven)} up front)",
    ]
    # §VI suggests filtering untestables before the GA passes.  In this
    # implementation the suggestion is already *inlined*: the sequential
    # engine runs the deterministic excitation/propagation proof before
    # ever invoking a justifier (Fig. 1's ordering), so untestable faults
    # never consume GA time in the first place.  The measurable claim is
    # therefore equivalence: the explicit preprocessing step must find
    # exactly the faults the GA passes already prove, at no loss.
    inlined = len(plain.untestable) >= len(proven)
    tolerance = max(4, int(0.02 * plain.total_faults))  # wall-clock jitter
    verdict = (
        "PASS"
        if inlined and abs(plain_classified - filt_classified) <= tolerance
        else "FAIL"
    )
    lines.append(
        f"  [{verdict}] the GA passes already prove every prefilterable "
        "fault untestable before any GA work — §VI's speedup is inlined "
        "in the Fig. 1 flow (explicit prefiltering is redundant here)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact(f"ablation_prefilter_{name}.txt", text)
