"""Learned fault-scheduling policy: equal coverage, less wall time.

The full ``repro.policy`` pipeline on real circuits, end to end:

1. a **static** s298+s344 campaign (fixed seed, wall-clock-free) runs the
   Table-I schedule unchanged and saves its ``repro-run-report/v1``;
2. ``train_policy`` mines that report's per-fault dispositions into a
   ``repro-policy/v1`` artifact — exactly what ``repro train-policy``
   does;
3. a **policy** campaign reruns the identical spec with ``policy_file``
   set, so predicted-futile faults defer straight to the mop-up pass and
   faults predicted to need pass N skip the passes before it.

Gated properties:

* per-circuit *detected fault sets* are identical — the mop-up safety
  net means deferral may only move work, never drop coverage;
* the policy campaign's solve phase finishes in at most
  ``SOLVE_RATIO_TARGET`` of the static campaign's — skipped GA passes on
  futile faults are the headline saving;
* the policy actually engaged (non-zero ``atpg.policy.pass_skips``).

Budgets are structural (``time_scale=None``): small PODEM backtrack
budgets and a shallow ``justify_depth`` keep the deterministic passes
polynomial on these deeper circuits, so both campaigns are bit-for-bit
deterministic and the coverage-equality gate is exact, not statistical.

Results land in ``benchmarks/out/policy.txt`` and the machine-readable
``BENCH_policy.json`` at the repository root, gated in CI by
``check_regression.py --policy``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.campaign import CampaignRunner, CampaignSpec
from repro.policy import dataset_from_reports, train_policy

from .conftest import write_artifact

#: Policy solve wall-time must be at most this fraction of static.
SOLVE_RATIO_TARGET = 0.90

#: Shared campaign shape (see module docstring for the budget rationale).
CAMPAIGN = dict(
    circuits=("s298", "s344"),
    name="policy-bench",
    seed=7,
    passes=3,
    backtracks=5,
    seq_len=16,
    fault_limit=24,
    justify_depth=3,
)


def run_campaign(journal, **extra):
    spec = CampaignSpec(**CAMPAIGN, **extra)
    return CampaignRunner(spec, str(journal)).run()


def detected_sets(result):
    return {
        name: sorted(m.detected) for name, m in result.circuits.items()
    }


def test_policy_schedule_gate(tmp_path):
    static = run_campaign(tmp_path / "static.jsonl")
    report_path = tmp_path / "static_report.json"
    static.report.save(str(report_path))

    # the same pipeline `repro train-policy` runs: mine the report's
    # dispositions, fit the three models, serialize the artifact
    policy = train_policy(dataset_from_reports([str(report_path)]))
    policy_path = tmp_path / "policy.json"
    policy.save(str(policy_path))

    steered = run_campaign(
        tmp_path / "steered.jsonl", policy_file=str(policy_path)
    )

    static_solve = static.phase_times["solve_s"]
    policy_solve = steered.phase_times["solve_s"]
    ratio = policy_solve / static_solve if static_solve else 1.0
    counters = steered.report.metrics.get("counters", {})
    policy_counters = {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith("atpg.policy.")
    }
    coverage_equal = detected_sets(steered) == detected_sets(static)

    lines = [
        f"Learned schedule policy — seed {CAMPAIGN['seed']}, "
        f"{CAMPAIGN['fault_limit']} faults/circuit, "
        f"{CAMPAIGN['passes']} passes, no wall-clock limits:",
        f"  {'circuit':<8s} {'static cov':>10s} {'policy cov':>10s} "
        f"{'detected equal':>15s}",
    ]
    for name in CAMPAIGN["circuits"]:
        s, p = static.circuits[name], steered.circuits[name]
        equal = sorted(s.detected) == sorted(p.detected)
        lines.append(
            f"  {name:<8s} {s.coverage:10.3f} {p.coverage:10.3f} "
            f"{str(equal):>15s}"
        )
    lines.append(
        f"  solve wall: static {static_solve:.2f} s, "
        f"policy {policy_solve:.2f} s — ratio {ratio:.3f} "
        f"(target <= {SOLVE_RATIO_TARGET})"
    )
    for name, value in policy_counters.items():
        lines.append(f"  {name}: {value}")
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("policy.txt", text)

    payload = {
        "schema": "repro-bench-policy/v1",
        "campaign": dict(CAMPAIGN, circuits=list(CAMPAIGN["circuits"])),
        "fingerprint": policy.fingerprint,
        "trained_rows": policy.trained_rows,
        "circuits": {
            name: {
                "static_coverage": round(static.circuits[name].coverage, 6),
                "policy_coverage": round(steered.circuits[name].coverage, 6),
                "detected_equal": sorted(static.circuits[name].detected)
                == sorted(steered.circuits[name].detected),
            }
            for name in CAMPAIGN["circuits"]
        },
        "coverage_equal": coverage_equal,
        "solve_seconds_static": round(static_solve, 4),
        "solve_seconds_policy": round(policy_solve, 4),
        "solve_ratio": round(ratio, 4),
        "policy_counters": policy_counters,
    }
    Path(__file__).parent.parent.joinpath("BENCH_policy.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    assert coverage_equal, (
        "policy campaign changed the detected fault sets: "
        f"{detected_sets(steered)} vs {detected_sets(static)}"
    )
    assert policy_counters.get("atpg.policy.pass_skips", 0) > 0, (
        "the policy never skipped a pass — it was inert"
    )
    assert ratio <= SOLVE_RATIO_TARGET, (
        f"policy solve time is {ratio:.3f}x static "
        f"(target <= {SOLVE_RATIO_TARGET})"
    )
