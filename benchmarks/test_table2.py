"""Table II: GA-HITEC versus HITEC on the ISCAS89 (stand-in) circuits.

For every circuit, both generators run the paper's three-pass schedule
(Table I structure, scaled budgets) and the cumulative Det/Vec/Time/Unt
rows are rendered in the paper's layout, followed by the Section V shape
checks.  Absolute counts differ from the paper — the circuits are
synthetic stand-ins and budgets are scaled — but the comparisons are
measured on identical circuits for both tools, which is what Table II
reports (see DESIGN.md §3/§4).
"""

from __future__ import annotations

import pytest

from repro.analysis import TableEntry, render_table, shape_checks
from repro.circuits import ISCAS89_SPECS, iscas89
from repro.hybrid import gahitec, gahitec_schedule, hitec_baseline, hitec_schedule

from .conftest import (
    BACKTRACK_BASE,
    FULL,
    QUICK_TABLE2,
    TIME_SCALE,
    write_artifact,
)

CIRCUITS = list(ISCAS89_SPECS) if FULL else QUICK_TABLE2

#: Paper's Table II final rows (Det, Vec, Unt after pass 3) for context.
PAPER_FINAL = {
    "s298": (265, 415, 26), "s344": (328, 169, 11), "s349": (335, 188, 13),
    "s382": (328, 716, 10), "s386": (314, 359, 70), "s400": (345, 704, 16),
    "s444": (381, 880, 25), "s526": (376, 873, 21), "s641": (404, 292, 63),
    "s713": (476, 294, 105), "s820": (814, 1108, 36), "s832": (818, 1064, 52),
    "s1196": (1239, 377, 3), "s1238": (1283, 409, 72), "s1423": (928, 414, 14),
    "s1488": (1444, 1369, 41), "s1494": (1453, 1224, 52),
    "s5378": (3238, 683, 224), "s35932": (34862, 425, 3984),
}

_entries = []


def _x_for(spec):
    return max(4, int(spec.paper_seq_scale[0] * spec.seq_depth))


def _population_scale(name: str) -> int:
    return 2 if name == "s35932" else 1  # the paper's s35932 exception


@pytest.mark.parametrize("name", CIRCUITS)
def test_table2_circuit(benchmark, name):
    spec = ISCAS89_SPECS[name]
    x = _x_for(spec)

    def run_both():
        left = gahitec(iscas89(name), seed=1).run(
            gahitec_schedule(
                x=x,
                num_passes=3,
                time_scale=TIME_SCALE,
                backtrack_base=BACKTRACK_BASE,
                population_scale=_population_scale(name),
            )
        )
        right = hitec_baseline(iscas89(name), seed=1).run(
            hitec_schedule(
                num_passes=3,
                time_scale=TIME_SCALE,
                backtrack_base=BACKTRACK_BASE,
            )
        )
        return left, right

    left, right = benchmark.pedantic(run_both, iterations=1, rounds=1)
    _entries.append(
        TableEntry(
            circuit=name,
            seq_depth=spec.seq_depth,
            total_faults=left.total_faults,
            left=left,
            right=right,
        )
    )

    # invariants every run must satisfy
    for run in (left, right):
        dets = [p.detected for p in run.passes]
        assert dets == sorted(dets), "Det must be cumulative"
        assert run.passes[-1].untestable == len(run.untestable)
    # untestable counts converge after the deterministic pass (paper §V)
    lu, ru = left.passes[-1].untestable, right.passes[-1].untestable
    assert abs(lu - ru) <= max(3, 0.25 * max(lu, ru, 1)), (
        f"{name}: untestable counts diverged ({lu} vs {ru})"
    )
    if len(_entries) == len(CIRCUITS):
        _render()  # every circuit has run: emit the full table


def _render():
    """Render the collected comparison in the paper's table layout."""
    lines = [render_table(_entries), ""]
    lines += shape_checks(_entries)
    lines.append("")
    lines.append("Paper's final rows (original ISCAS89 netlists, 1995 hardware):")
    for e in _entries:
        paper = PAPER_FINAL.get(e.circuit)
        if paper:
            lines.append(
                f"  {e.circuit:<8s} paper Det={paper[0]} Vec={paper[1]} "
                f"Unt={paper[2]}  | here Det={e.left.passes[-1].detected} "
                f"Vec={e.left.passes[-1].vectors} "
                f"Unt={e.left.passes[-1].untestable} "
                f"of {e.total_faults} stand-in faults"
            )
    text = "\n".join(lines)
    print("\n" + text)
    write_artifact("table2.txt", text)
