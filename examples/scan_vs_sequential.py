#!/usr/bin/env python3
"""Why GA-HITEC's problem eventually disappeared: full scan.

Sequential ATPG is hard because states must be justified and observed
through time.  Scan design trades silicon (a mux per flip-flop and a
shift chain) for direct state access, collapsing the problem to
combinational search.  This example runs the same circuit both ways and
shows the trade-off in one screen: coverage and effort versus hardware
and test length.

Run:
    python examples/scan_vs_sequential.py
"""

import time

from repro.atpg.scan_atpg import ScanAtpgParams, ScanTestGenerator
from repro.circuits import iscas89
from repro.hybrid import gahitec, gahitec_schedule


def main() -> None:
    name = "s298"
    original = iscas89(name)
    print(f"Circuit: {name} {original.stats()}\n")

    print("Sequential GA-HITEC (no scan)…")
    t0 = time.perf_counter()
    seq = gahitec(iscas89(name), seed=1).run(
        gahitec_schedule(x=4 * original.sequential_depth, num_passes=2,
                         time_scale=0.01, backtrack_base=30)
    )
    seq_time = time.perf_counter() - t0
    print(f"  {len(seq.detected)}/{seq.total_faults} detected, "
          f"{len(seq.untestable)} proven untestable, "
          f"{len(seq.test_set)} vectors, {seq_time:.1f}s\n")

    print("Full-scan flow (load / capture / unload)…")
    t0 = time.perf_counter()
    gen = ScanTestGenerator(iscas89(name))
    scan = gen.run(ScanAtpgParams(max_backtracks=500))
    scan_time = time.perf_counter() - t0
    stats = scan.passes[-1]
    print(f"  {stats.detected}/{scan.total_faults} detected, "
          f"{stats.untestable} proven untestable, "
          f"{stats.vectors} vectors, {scan_time:.1f}s")
    print(f"  hardware cost: {original.num_gates} -> "
          f"{gen.scanned.num_gates} gates for a "
          f"{gen.chain.length}-bit chain")
    print(f"  test length cost: every test is "
          f"{2 * gen.chain.length + 1} cycles (load + capture + unload)\n")

    seq_eff = (len(seq.detected) + len(seq.untestable)) / seq.total_faults
    scan_eff = (stats.detected + stats.untestable) / scan.total_faults
    print(f"ATPG efficiency: sequential {seq_eff:.0%} vs scan {scan_eff:.0%}")
    print("Scan classifies (nearly) everything in seconds — the reason")
    print("hybrid sequential ATPG like GA-HITEC became a niche after the")
    print("industry adopted scan, and the reason it mattered before.")


if __name__ == "__main__":
    main()
