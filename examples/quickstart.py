#!/usr/bin/env python3
"""Quickstart: hybrid test generation on the s27 benchmark.

Runs the full GA-HITEC flow — deterministic fault excitation/propagation
with genetic state justification in the first two passes and deterministic
reverse-time justification in the third — then independently verifies the
generated test set with the fault simulator.

Run:
    python examples/quickstart.py
"""

from repro import (
    collapse_faults,
    evaluate_test_set,
    gahitec,
    gahitec_schedule,
    s27,
)


def main() -> None:
    circuit = s27()
    print(f"Circuit: {circuit.name}  {circuit.stats()}")

    faults = collapse_faults(circuit)
    print(f"Collapsed stuck-at fault list: {len(faults)} faults\n")

    # x is the GA sequence length: a multiple of the sequential depth
    # (the paper uses 4x depth in pass 1 and 8x in pass 2).
    x = 4 * circuit.sequential_depth
    driver = gahitec(circuit, seed=1)
    schedule = gahitec_schedule(x=x, num_passes=3, time_scale=None,
                                backtrack_base=100)
    result = driver.run(schedule)

    print(result.summary())
    print()

    # Never trust an ATPG's self-reported coverage: re-grade the vectors.
    report = evaluate_test_set(circuit, result.test_set, faults)
    print(f"Independent fault simulation: {report}")
    assert set(report.detected) == set(result.detected)
    print("Verified: reported detections match fault simulation.")


if __name__ == "__main__":
    main()
