#!/usr/bin/env python3
"""Five generations of test generation, one circuit, equal footing.

Runs the whole historical lineage the paper's introduction traces —
random, weighted random, GA-based simulation (GATEST/CRIS style), the
deterministic HITEC baseline, and the hybrid GA-HITEC — on the same
circuit with multi-seed sweeps, and prints a final comparison table.

Run:
    python examples/generator_shootout.py            # s298 stand-in
    REPRO_CIRCUIT=s344 python examples/generator_shootout.py
"""

import os

from repro.analysis.experiments import compare_sweeps, seed_sweep
from repro.baselines import (
    RandomAtpgParams,
    RandomTestGenerator,
    WeightedRandomTestGenerator,
)
from repro.circuits import iscas89
from repro.ga.atpg import GAAtpgParams, GASimulationTestGenerator
from repro.hybrid import gahitec, gahitec_schedule, hitec_baseline, hitec_schedule

SEEDS = (0, 1, 2)
BUDGET_S = 30.0  # per generator per seed


def main() -> None:
    name = os.environ.get("REPRO_CIRCUIT", "s298")
    circuit = iscas89(name)
    x = 4 * circuit.sequential_depth
    print(f"Circuit: {name} {circuit.stats()}")
    print(f"Budget: ~{BUDGET_S:.0f}s per generator per seed, "
          f"{len(SEEDS)} seeds\n")

    sweeps = [
        seed_sweep(
            "RANDOM",
            lambda s: RandomTestGenerator(iscas89(name), seed=s).run(
                RandomAtpgParams(), time_limit=BUDGET_S
            ),
            SEEDS,
        ),
        seed_sweep(
            "WRANDOM",
            lambda s: WeightedRandomTestGenerator(iscas89(name), seed=s).run(
                RandomAtpgParams(), time_limit=BUDGET_S
            ),
            SEEDS,
        ),
        seed_sweep(
            "GA-SIM",
            lambda s: GASimulationTestGenerator(iscas89(name), seed=s).run(
                GAAtpgParams(seq_len=x), time_limit=BUDGET_S
            ),
            SEEDS,
        ),
        seed_sweep(
            "HITEC",
            lambda s: hitec_baseline(iscas89(name), seed=s).run(
                hitec_schedule(num_passes=2, time_scale=0.02,
                               backtrack_base=30)
            ),
            SEEDS,
        ),
        seed_sweep(
            "GA-HITEC",
            lambda s: gahitec(iscas89(name), seed=s).run(
                gahitec_schedule(x=x, num_passes=2, time_scale=0.02,
                                 backtrack_base=30)
            ),
            SEEDS,
        ),
    ]

    print(compare_sweeps(sweeps))
    print("\nNote: only the deterministic engines (HITEC, GA-HITEC) can")
    print("prove faults untestable; the simulation-based generators stop")
    print("at whatever their searches happen to reach.")


if __name__ == "__main__":
    main()
