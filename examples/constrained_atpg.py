#!/usr/bin/env python3
"""In-system test generation under environment constraints (Section VI).

The paper closes by arguing the hybrid approach suits real circuits whose
environment restricts the test sequences: forward-only GA justification
satisfies such constraints by construction.  This example tests the
parallel DSP controller under two realistic restrictions —

* the ``broadcast`` pin is tied off (the system harness never asserts it),
* the ``sel`` channel-select bus must stay constant within one sequence
  (the harness reprograms it only between tests)

— and compares coverage against the unconstrained run, then exports a
tester-ready program with expected responses.

Run:
    python examples/constrained_atpg.py
"""

from repro.analysis import build_test_program, compact_test_set
from repro.atpg.constraints import InputConstraints
from repro.circuits import pcont2
from repro.hybrid import HybridTestGenerator, gahitec_schedule


def run(constraints=None):
    circuit = pcont2(channels=4, counter_width=4)
    driver = HybridTestGenerator(circuit, seed=3, constraints=constraints)
    schedule = gahitec_schedule(x=16, num_passes=2, time_scale=0.05,
                                backtrack_base=50)
    return circuit, driver.run(schedule)


def main() -> None:
    circuit, free = run()
    print("Unconstrained run:")
    print(free.summary())

    constraints = InputConstraints(
        fixed={"broadcast": 0},
        hold={"sel_0", "sel_1", "sel_2"},
    )
    circuit, constrained = run(constraints)
    print("\nConstrained run (broadcast tied low, sel held per sequence):")
    print(constrained.summary())

    # fixed pins hold across the whole program; hold pins per sequence
    from repro.analysis import split_blocks

    for block in split_blocks(constrained.test_set, constrained.blocks):
        assert constraints.satisfied_by(circuit, block)
    print("\nEvery emitted sequence satisfies the constraints (checked).")

    lost = len(free.detected) - len(constrained.detected)
    print(f"Coverage cost of the environment: {lost} faults "
          f"({lost / free.total_faults:.1%} of the fault list)")

    compacted = compact_test_set(
        circuit, constrained.test_set, list(constrained.detected.values())
    )
    print(f"\nCompaction: {compacted.original_vectors} -> "
          f"{compacted.compacted_vectors} vectors "
          f"({compacted.reduction:.0%} smaller)")

    program = build_test_program(circuit, compacted.vectors)
    print(f"Test program with expected responses ({len(program)} cycles):")
    print("\n".join(program.render().splitlines()[:8]))
    print("  ...")


if __name__ == "__main__":
    main()
