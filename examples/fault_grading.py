#!/usr/bin/env python3
"""Fault-grading functional test programs with the PROOFS-style simulator.

Before running ATPG, engineers often grade an existing functional test
(here: directed multiply operations) to see which faults it already
covers.  This example grades a functional program against the 16-bit
Booth multiplier, compares it with random vectors, and lists the fault
sites the functional program misses.

Run:
    python examples/fault_grading.py
"""

import random
from collections import Counter

from repro import FaultSimulator, collapse_faults, mult16
from repro.analysis import random_baseline


def functional_program(circuit, operations):
    """Encode (x, y) multiply operations as a PI vector sequence."""
    index = {net: i for i, net in enumerate(circuit.inputs)}
    vectors = []
    for x, y in operations:
        start = [0] * len(circuit.inputs)
        start[index["start"]] = 1
        for i in range(16):
            start[index[f"multiplicand_{i}"]] = (x >> i) & 1
            start[index[f"multiplier_{i}"]] = (y >> i) & 1
        vectors.append(start)
        idle = [0] * len(circuit.inputs)
        vectors.extend([idle] * 17)  # let the multiply run to completion
    return vectors


def main() -> None:
    circuit = mult16()
    faults = collapse_faults(circuit)
    print(f"Circuit: {circuit.name} {circuit.stats()}")
    print(f"Fault list: {len(faults)} collapsed stuck-at faults\n")

    operations = [
        (0, 0), (1, 1), (0xFFFF, 0xFFFF),      # corner cases
        (0x5555, 0xAAAA), (0x8000, 2),          # pattern + sign bit
        (12345, 678), (40000, 3),               # ordinary magnitudes
    ]
    program = functional_program(circuit, operations)
    sim = FaultSimulator(circuit)
    graded = sim.run(program, faults)
    print(f"Functional program: {len(program)} vectors, "
          f"{len(graded.detected)}/{len(faults)} faults "
          f"({100 * len(graded.detected) / len(faults):.1f}%)")

    rnd = random_baseline(circuit, len(program), seed=9)
    print(f"Random vectors    : {rnd.vectors} vectors, "
          f"{len(rnd.detected)}/{len(faults)} faults "
          f"({100 * rnd.coverage:.1f}%)\n")

    missed = [f for f in faults if f not in graded.detected]
    by_block = Counter(f.net.split("_")[0] for f in missed)
    print("Fault sites the functional program misses, by register block:")
    for block, count in by_block.most_common(8):
        print(f"  {block:<10s} {count}")


if __name__ == "__main__":
    main()
