#!/usr/bin/env python3
"""A miniature Table II: GA-HITEC versus HITEC, side by side.

Runs both generators with the paper's pass structure (scaled-down budgets)
on a quick circuit set and renders the comparison in the layout of the
paper's results tables, followed by the qualitative shape checks from
Section V.

Run:
    python examples/paper_comparison.py              # quick circuits
    REPRO_CIRCUITS=s27,s298 python examples/paper_comparison.py
"""

import os

from repro import gahitec, gahitec_schedule, hitec_baseline, hitec_schedule
from repro.analysis import TableEntry, render_table, shape_checks
from repro.circuits import ISCAS89_SPECS, iscas89


def run_circuit(name: str) -> TableEntry:
    spec = ISCAS89_SPECS[name]
    x = max(4, int(spec.paper_seq_scale[0] * spec.seq_depth))

    left = gahitec(iscas89(name), seed=1).run(
        gahitec_schedule(x=x, num_passes=3, time_scale=0.05,
                         backtrack_base=50)
    )
    right = hitec_baseline(iscas89(name), seed=1).run(
        hitec_schedule(num_passes=3, time_scale=0.05, backtrack_base=50)
    )
    return TableEntry(
        circuit=name,
        seq_depth=spec.seq_depth,
        total_faults=left.total_faults,
        left=left,
        right=right,
    )


def main() -> None:
    names = os.environ.get("REPRO_CIRCUITS", "s27,s298").split(",")
    entries = [run_circuit(name.strip()) for name in names]

    print(render_table(entries))
    print()
    for line in shape_checks(entries):
        print(line)


if __name__ == "__main__":
    main()
