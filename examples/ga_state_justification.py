#!/usr/bin/env python3
"""Genetic versus deterministic state justification, head to head.

State justification is the hard part of sequential ATPG: given flip-flop
values a test needs in time frame zero, find an input sequence that drives
the circuit there.  This example targets counter states — the classic
hard-to-justify case, since reaching count N needs N coherent steps — and
pits the paper's GA (Section IV) against reverse-time deterministic search
(HITEC style).

Run:
    python examples/ga_state_justification.py
"""

import random
import time

from repro import Limits, justify_state
from repro.circuits import counter
from repro.ga import GAJustifyParams, GAStateJustifier
from repro.simulation import FrameSimulator, compile_circuit, pack_const, unpack


def verify(circuit, required, vectors) -> bool:
    """Replay a justification sequence from power-up and check the state."""
    sim = FrameSimulator(circuit, width=1)
    for vec in vectors:
        sim.step([pack_const(0 if v == 2 else v, 1) for v in vec])
    state = dict(zip(circuit.flops, sim.get_state()))
    return all(unpack(state[net], 1)[0] == want for net, want in required.items())


def main() -> None:
    width = 4
    circuit = counter(width)
    cc = compile_circuit(circuit)
    print(f"Circuit: {width}-bit clearable counter {circuit.stats()}\n")

    for target in (3, 9, 13):
        required = {f"q{i}": (target >> i) & 1 for i in range(width)}
        print(f"Target state: count = {target}  ({required})")

        t0 = time.perf_counter()
        ga = GAStateJustifier(circuit, rng=random.Random(0))
        ga_res = ga.justify(
            required,
            GAJustifyParams(seq_len=2 * target + 4, population_size=64,
                            generations=8),
        )
        ga_time = time.perf_counter() - t0
        status = f"{len(ga_res.vectors)} vectors" if ga_res.success else "failed"
        print(f"  GA            : {status:>12s}  in {ga_time * 1e3:7.1f} ms")
        if ga_res.success:
            assert verify(circuit, required, ga_res.vectors)

        t0 = time.perf_counter()
        det_res = justify_state(
            cc, required, max_depth=target + 3,
            limits=Limits(max_backtracks=200_000),
        )
        det_time = time.perf_counter() - t0
        status = f"{len(det_res.vectors)} vectors" if det_res.success else det_res.status.value
        print(f"  deterministic : {status:>12s}  in {det_time * 1e3:7.1f} ms")
        if det_res.success:
            assert verify(circuit, required, det_res.vectors)
        print()

    print("Both engines verified against replay simulation.")


if __name__ == "__main__":
    main()
