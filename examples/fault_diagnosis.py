#!/usr/bin/env python3
"""Closing the loop: generate tests, then diagnose a failing device.

The test set an ATPG produces is also a diagnostic instrument: simulate
every fault's full response once (the fault dictionary), and when a
manufactured device fails on the tester, the failing (cycle, output)
positions point back at candidate defect locations.

This example generates tests for s27 with GA-HITEC, builds the
dictionary, "manufactures" a defective device by picking a hidden fault,
replays the test program against it, and diagnoses the observed failures.

Run:
    python examples/fault_diagnosis.py
"""

import random

from repro import gahitec, gahitec_schedule, s27
from repro.analysis import FaultDictionary
from repro.simulation import FaultSimulator


def main() -> None:
    circuit = s27()

    print("Generating tests with GA-HITEC…")
    result = gahitec(circuit, seed=1).run(
        gahitec_schedule(x=12, time_scale=None, backtrack_base=100)
    )
    print(f"  {len(result.detected)}/{result.total_faults} faults, "
          f"{len(result.test_set)} vectors\n")

    dictionary = FaultDictionary(circuit, result.test_set)
    resolution = dictionary.diagnostic_resolution()
    print(f"Fault dictionary: {len(dictionary.detected_faults)} detectable "
          f"faults, diagnostic resolution {resolution:.0%}\n")

    rng = random.Random(2026)
    hidden = rng.choice(dictionary.detected_faults)

    # replay the tester: the failing positions are the hidden fault's
    # response differences against the expected (good) responses
    outcome = FaultSimulator(circuit).run(
        result.test_set, [hidden], record_signatures=True
    )
    failures = sorted(outcome.signatures[hidden])
    print(f"Device fails at {len(failures)} (cycle, output) positions "
          f"(first few: {failures[:4]})\n")

    print("Diagnosis (ranked candidates):")
    for rank, cand in enumerate(dictionary.diagnose(failures), 1):
        names = ", ".join(str(f) for f in cand.faults)
        mark = "exact" if cand.exact else (
            f"{cand.misses} unexplained / {cand.mispredicts} mispredicted"
        )
        print(f"  {rank}. [{mark}] {names}")

    top = dictionary.diagnose(failures)[0]
    assert hidden in top.faults, "diagnosis must find the hidden fault"
    print(f"\nHidden fault was: {hidden} — found in the top candidate class.")


if __name__ == "__main__":
    main()
