#!/usr/bin/env python3
"""Test generation for your own design, built with the RTL builder.

Builds a small bus-connected accumulator datapath (load / add / hold) at
the word level, elaborates it to gates, writes it out in ISCAS89 ``.bench``
format, and runs the hybrid test generator on it — the workflow a
downstream user follows for a custom design.

Run:
    python examples/custom_circuit_atpg.py
"""

import tempfile

from repro import (
    RtlBuilder,
    evaluate_test_set,
    gahitec,
    gahitec_schedule,
    load_bench,
    save_bench,
)


def build_accumulator(width: int = 6):
    """An accumulator with opcode control: 00 hold, 01 load, 10 add."""
    b = RtlBuilder("accumulator")
    op = b.input_bus("op", 2)
    data = b.input_bus("data", width)

    acc = b.register_loop(width, "acc")
    total, carry = b.add(acc.q, data)

    is_load = b.and_(b.not_(op[1]), op[0])
    is_add = b.and_(op[1], b.not_(op[0]))
    after_add = b.mux2(is_add, acc.q, total)
    acc.drive(b.mux2(is_load, after_add, data))

    b.output_bus(acc.q, "acc")
    b.output_bit(b.and_(is_add, carry))  # overflow flag
    return b.build()


def main() -> None:
    circuit = build_accumulator()
    print(f"Built {circuit.name}: {circuit.stats()}")

    # the netlist round-trips through the standard interchange format
    with tempfile.NamedTemporaryFile("w", suffix=".bench") as handle:
        save_bench(circuit, handle.name)
        circuit = load_bench(handle.name, name="accumulator")
    print("Round-tripped through .bench format.\n")

    x = max(4, 4 * circuit.sequential_depth)
    driver = gahitec(circuit, seed=7)
    result = driver.run(
        gahitec_schedule(x=x, num_passes=3, time_scale=None, backtrack_base=100)
    )
    print(result.summary())

    report = evaluate_test_set(circuit, result.test_set)
    print(f"\nIndependent grade of the generated vectors: {report}")


if __name__ == "__main__":
    main()
